"""Command-line interface: ``python -m repro.cli`` (or ``repro-gossip``).

Subcommands:

* ``gossip``      — build and report a gossip schedule for a named topology;
* ``tables``      — regenerate the paper's Tables 1–4;
* ``compare``     — compare algorithms across the standard suite;
* ``paper``       — verify every paper figure claim and print a summary;
* ``bench``       — cold vs warm plan serving through :class:`GossipService`;
* ``serve-stats`` — replay a synthetic request stream and print service stats;
* ``chaos``       — seeded fault sweep (drop rate x topology) through recovery
  (``--permanent`` reroutes through the survival layer instead);
* ``survive``     — seeded permanent-failure sweep (fail-stop rate x topology)
  measuring survivor coverage through ``repro.core.survival``;
* ``plan-bench``  — pruned vs exhaustive sweep timings with the speedup gate;
* ``run-net``     — execute the online protocol over real UDP sockets on
  localhost (``repro.runtime``), optionally under seeded socket-level chaos
  (drops, delay jitter, killed peers) with failure detection and survival
  replanning (``--processes`` reroutes through the supervised
  multi-process runtime);
* ``run-proc``    — execute under supervision with one OS process per peer
  (``repro.runtime.supervisor``): real ``SIGKILL`` crash injection, capped
  restart-with-rejoin or survivor replanning, and a structured incident
  journal (``--journal`` writes it as JSON Lines);
* ``lint``        — static schedule analysis (``repro.lint``): verify plans
  against the model, efficiency and paper-invariant rules without executing
  them (``--json`` for CI, ``--check`` to gate on error diagnostics,
  ``--code`` for the AST code-conventions lint instead);
* ``check-protocol`` — explicit-state model checking of the runtime
  protocol (``repro.check``): exhaustively explore adversarial
  interleavings (reorder, crash-at-round) of small instances, checking
  safety invariants and reachability, with counterexample traces
  (``--trace``) and a committed state-count matrix gate (``--check``).

Examples
--------
::

    python -m repro.cli gossip --topology grid --n 16 --algorithm simple
    python -m repro.cli lint --family grid:16 --family random:24
    python -m repro.cli lint --all --check --no-warnings
    python -m repro.cli gossip --topology cycle --n 12 --show-schedule
    python -m repro.cli tables --vertex 4
    python -m repro.cli compare --sizes 16 32 64
    python -m repro.cli paper
    python -m repro.cli bench --topology grid --n 256 --check
    python -m repro.cli serve-stats --requests 500
    python -m repro.cli chaos --family random:48 --drop 0.2 --seed 7 --timeout 120
    python -m repro.cli survive --family random:32 --fail-stop 0.05 --check
    python -m repro.cli run-net --family grid:16 --drop 0.1 --kill 4:3 --seed 7
    python -m repro.cli run-proc --family path:8 --sigkill 3:2 --policy restart
    python -m repro.cli plan-bench --spec grid:400 --spec torus:1024 --check
    python -m repro.cli check-protocol --family path:4 --crashes 1 --trace
    python -m repro.cli check-protocol --check
    python -m repro.cli lint --code
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from .analysis.comparison import comparison_table, format_comparison
from .analysis.sweep import FAMILIES, family_instance
from .analysis.tables import paper_tables, render_timeline
from .core.gossip import ALGORITHMS, gossip
from .networks.properties import summarize
from .viz.ascii import render_schedule, render_tree

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for the test suite)."""
    parser = argparse.ArgumentParser(
        prog="repro-gossip",
        description="Gossiping in the multicasting communication environment",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gossip = sub.add_parser("gossip", help="schedule gossip on a topology")
    p_gossip.add_argument(
        "--topology", choices=sorted(FAMILIES), default="grid",
        help="topology family (size is approximate for structured families)",
    )
    p_gossip.add_argument("--n", type=int, default=16, help="target processor count")
    p_gossip.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="concurrent-updown"
    )
    p_gossip.add_argument(
        "--show-tree", action="store_true", help="print the labelled spanning tree"
    )
    p_gossip.add_argument(
        "--show-schedule", action="store_true", help="print every round"
    )

    p_tables = sub.add_parser("tables", help="regenerate the paper's Tables 1-4")
    p_tables.add_argument(
        "--vertex", type=int, action="append", default=None,
        help="vertex to tabulate (repeatable; default: 0 1 4 8)",
    )

    p_cmp = sub.add_parser("compare", help="compare algorithms across the suite")
    p_cmp.add_argument("--sizes", type=int, nargs="+", default=[16, 32])
    p_cmp.add_argument(
        "--families", nargs="+", choices=sorted(FAMILIES), default=None
    )
    p_cmp.add_argument(
        "--epidemic", action="store_true",
        help="adversarial suite: deterministic vs epidemic/coded baselines "
        "across fault regimes (seeded, byte-reproducible)",
    )
    p_cmp.add_argument("--n", type=int, default=16, help="[--epidemic] family size")
    p_cmp.add_argument(
        "--trials", type=int, default=100, help="[--epidemic] seeded trials per cell"
    )
    p_cmp.add_argument("--seed", type=int, default=0, help="[--epidemic] sweep seed")
    p_cmp.add_argument(
        "--drop", type=float, nargs="+", default=[0.0, 0.15],
        help="[--epidemic] delivery drop rates to sweep",
    )
    p_cmp.add_argument(
        "--fail-stop", type=float, nargs="+", default=[0.0],
        help="[--epidemic] permanent fail-stop rates to sweep",
    )
    p_cmp.add_argument(
        "--check", action="store_true",
        help="[--epidemic] assert the makespan + resilience gates",
    )

    sub.add_parser("paper", help="verify all paper-figure claims")

    p_bcast = sub.add_parser(
        "broadcast", help="broadcast from a source (multicast vs telephone)"
    )
    p_bcast.add_argument("--topology", choices=sorted(FAMILIES), default="grid")
    p_bcast.add_argument("--n", type=int, default=16)
    p_bcast.add_argument("--source", type=int, default=0)

    p_weighted = sub.add_parser(
        "weighted", help="weighted gossiping via chain splitting (Section 4)"
    )
    p_weighted.add_argument("--topology", choices=sorted(FAMILIES), default="grid")
    p_weighted.add_argument("--n", type=int, default=16)
    p_weighted.add_argument(
        "--max-weight", type=int, default=3,
        help="per-processor message counts drawn from 1..max-weight (seeded)",
    )

    p_online = sub.add_parser(
        "online", help="run the online protocol and diff against offline"
    )
    p_online.add_argument("--topology", choices=sorted(FAMILIES), default="grid")
    p_online.add_argument("--n", type=int, default=16)

    p_rep = sub.add_parser(
        "repeated", help="pipeline k gossip instances on one tree"
    )
    p_rep.add_argument("--topology", choices=sorted(FAMILIES), default="star")
    p_rep.add_argument("--n", type=int, default=16)
    p_rep.add_argument("--instances", type=int, default=4)

    p_bounds = sub.add_parser(
        "bounds", help="measured vs closed-form bounds across families"
    )
    p_bounds.add_argument("--sizes", type=int, nargs="+", default=[32])
    p_bounds.add_argument(
        "--families", nargs="+", choices=sorted(FAMILIES),
        default=["path", "star", "grid", "hypercube", "random-tree"],
    )

    p_bench = sub.add_parser(
        "bench", help="cold vs warm plan serving through GossipService"
    )
    p_bench.add_argument("--topology", choices=sorted(FAMILIES), default="grid")
    p_bench.add_argument("--n", type=int, default=256, help="target processor count")
    p_bench.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="concurrent-updown"
    )
    p_bench.add_argument("--batch", type=int, default=32, help="batch request count")
    p_bench.add_argument(
        "--warm-rounds", type=int, default=200, help="warm-hit samples to take"
    )
    p_bench.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the warm hit is >= 10x faster than cold",
    )

    p_stats = sub.add_parser(
        "serve-stats", help="replay a synthetic request stream; print service stats"
    )
    p_stats.add_argument(
        "--families", nargs="+", choices=sorted(FAMILIES),
        default=["grid", "star", "path", "hypercube"],
    )
    p_stats.add_argument("--sizes", type=int, nargs="+", default=[16, 64])
    p_stats.add_argument("--requests", type=int, default=200)
    p_stats.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="concurrent-updown"
    )

    p_chaos = sub.add_parser(
        "chaos", help="seeded fault sweep: inject losses, repair, report overhead"
    )
    p_chaos.add_argument(
        "--family", action="append", default=None, metavar="SPEC",
        help="network spec 'family:n' (repeatable; default: random:48)",
    )
    p_chaos.add_argument(
        "--drop", type=float, action="append", default=None,
        help="per-delivery drop probability (repeatable; default: 0.2)",
    )
    p_chaos.add_argument("--trials", type=int, default=20, help="trials per cell")
    p_chaos.add_argument("--seed", type=int, default=7, help="sweep seed")
    p_chaos.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="concurrent-updown"
    )
    p_chaos.add_argument(
        "--max-repair-rounds", type=int, default=None,
        help="repair-round budget per trial (default: max(256, 10x baseline))",
    )
    p_chaos.add_argument(
        "--link-outage", type=float, default=0.0,
        help="per-round link outage probability",
    )
    p_chaos.add_argument(
        "--crash", type=float, default=0.0,
        help="per-round transient processor crash probability",
    )
    p_chaos.add_argument(
        "--permanent", type=float, action="append", default=None, metavar="RATE",
        help="permanent fail-stop rate(s): route the sweep through the "
             "survival layer instead of transient recovery (repeatable)",
    )
    p_chaos.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless every cell completes >= 95%% of trials "
             "and all repairs pass fault-free re-validation "
             "(with --permanent: the survivor-coverage gates)",
    )
    p_chaos.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the whole sweep; on expiry fail fast "
             "with the typed SweepTimeoutError instead of grinding on",
    )

    p_survive = sub.add_parser(
        "survive",
        help="seeded permanent-failure sweep: fail-stop, diagnose, re-plan "
             "degraded gossip per surviving component",
    )
    p_survive.add_argument(
        "--family", action="append", default=None, metavar="SPEC",
        help="network spec 'family:n' (repeatable; default: random:48)",
    )
    p_survive.add_argument(
        "--fail-stop", type=float, action="append", default=None,
        help="per-round permanent fail-stop probability "
             "(repeatable; default: 0.02)",
    )
    p_survive.add_argument(
        "--link-fail", type=float, default=0.0,
        help="per-round permanent link-failure probability",
    )
    p_survive.add_argument(
        "--drop", type=float, default=0.0,
        help="transient per-delivery drop probability layered on top",
    )
    p_survive.add_argument("--trials", type=int, default=20, help="trials per cell")
    p_survive.add_argument("--seed", type=int, default=7, help="sweep seed")
    p_survive.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="concurrent-updown"
    )
    p_survive.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless every survivable trial reaches 100%% "
             "survivor coverage, every partitioned trial raises the typed "
             "error, and all schedules respect the degraded bound",
    )
    p_survive.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the whole sweep; on expiry fail fast "
             "with the typed SweepTimeoutError instead of grinding on",
    )

    p_runnet = sub.add_parser(
        "run-net",
        help="execute the online protocol over real UDP sockets on localhost, "
             "optionally under seeded socket-level chaos",
    )
    p_runnet.add_argument(
        "--family", default="grid:16", metavar="SPEC",
        help="network spec 'family:n' (default: grid:16)",
    )
    p_runnet.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="concurrent-updown"
    )
    p_runnet.add_argument("--seed", type=int, default=7, help="chaos seed")
    p_runnet.add_argument(
        "--drop", type=float, default=0.0,
        help="per-send-attempt datagram drop probability",
    )
    p_runnet.add_argument(
        "--delay", type=float, default=0.0,
        help="per-send-attempt datagram delay probability (reorders)",
    )
    p_runnet.add_argument(
        "--delay-max", type=float, default=0.02,
        help="upper bound of the drawn extra latency in seconds",
    )
    p_runnet.add_argument(
        "--kill", action="append", default=None, metavar="V:R",
        help="fail-stop vertex V at protocol round R (repeatable)",
    )
    p_runnet.add_argument(
        "--timeout", type=float, default=60.0,
        help="whole-run deadline in seconds (typed RuntimeDeadlineError)",
    )
    p_runnet.add_argument(
        "--time-scale", type=float, default=1.0,
        help="shrink every runtime wait by this factor in (0, 1] "
             "(1.0 = real time)",
    )
    p_runnet.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the run reaches full (degraded) coverage "
             "and a fault-free run matches the offline schedule exactly",
    )
    p_runnet.add_argument(
        "--processes", action="store_true",
        help="run under supervision with one OS process per peer instead of "
             "one asyncio task (--kill then injects real SIGKILLs)",
    )

    p_runproc = sub.add_parser(
        "run-proc",
        help="execute under supervision with one OS process per peer: real "
             "SIGKILL crash injection, restart-with-rejoin or survivor "
             "replanning, structured incident journal",
    )
    p_runproc.add_argument(
        "--family", default="grid:16", metavar="SPEC",
        help="network spec 'family:n' (default: grid:16)",
    )
    p_runproc.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="concurrent-updown"
    )
    p_runproc.add_argument("--seed", type=int, default=7, help="chaos seed")
    p_runproc.add_argument(
        "--drop", type=float, default=0.0,
        help="per-send-attempt datagram drop probability",
    )
    p_runproc.add_argument(
        "--delay", type=float, default=0.0,
        help="per-send-attempt datagram delay probability (reorders)",
    )
    p_runproc.add_argument(
        "--delay-max", type=float, default=0.02,
        help="upper bound of the drawn extra latency in seconds",
    )
    p_runproc.add_argument(
        "--sigkill", action="append", default=None, metavar="V:R",
        help="SIGKILL the OS process of vertex V at protocol round R "
             "(repeatable; a real, abrupt process death)",
    )
    p_runproc.add_argument(
        "--policy", choices=("replan", "restart"), default="replan",
        help="death resolution: replan around the dead (gossip among "
             "survivors) or restart-with-rejoin (full gossip re-completes)",
    )
    p_runproc.add_argument(
        "--max-restarts", type=int, default=3,
        help="restart attempts per victim before declaring fail-stop",
    )
    p_runproc.add_argument(
        "--rejoin-crashes", type=int, default=0,
        help="seeded chaos: this many restart attempts die again on boot",
    )
    p_runproc.add_argument(
        "--timeout", type=float, default=60.0,
        help="whole-run deadline in seconds (typed RuntimeDeadlineError)",
    )
    p_runproc.add_argument(
        "--time-scale", type=float, default=1.0,
        help="shrink every runtime wait by this factor in (0, 1] "
             "(1.0 = real time)",
    )
    p_runproc.add_argument(
        "--journal", default=None, metavar="PATH",
        help="write the structured incident journal here as JSON Lines",
    )
    p_runproc.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the run resolves: fault-free runs match "
             "the offline schedule exactly; crash-injected runs detect every "
             "victim and reach full (degraded) coverage",
    )

    p_pbench = sub.add_parser(
        "plan-bench",
        help="time the pruned vs exhaustive minimum-depth-tree sweep",
    )
    p_pbench.add_argument(
        "--spec", action="append", default=None, metavar="SPEC",
        help="network spec 'family:n' (repeatable; default: the standard sweep)",
    )
    p_pbench.add_argument(
        "--quick", action="store_true",
        help="benchmark the small tier-1 subset instead of the full sweep",
    )
    p_pbench.add_argument(
        "--repeats", type=int, default=3, help="timing repetitions (best-of)"
    )
    p_pbench.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the BENCH_planner.json trajectory artefact here",
    )
    p_pbench.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless trees are bit-identical, the grid:400-"
             "class speedup and cold-plan gates hold, and array schedules "
             "match the seed builder on every family",
    )

    p_lint = sub.add_parser(
        "lint", help="statically analyze gossip plans without executing them"
    )
    p_lint.add_argument(
        "--family", action="append", default=None, metavar="SPEC",
        help="network spec 'family:n' (repeatable; default: a standard subset)",
    )
    p_lint.add_argument(
        "--all", action="store_true",
        help="lint every topology family (at size --n)",
    )
    p_lint.add_argument(
        "--n", type=int, default=16,
        help="processor count for specs without an explicit size",
    )
    p_lint.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="concurrent-updown"
    )
    p_lint.add_argument(
        "--json", action="store_true",
        help="emit one machine-readable JSON document (for CI)",
    )
    p_lint.add_argument(
        "--no-warnings", action="store_true",
        help="show error diagnostics only",
    )
    p_lint.add_argument(
        "--check", action="store_true",
        help="exit non-zero if any plan has error-severity diagnostics",
    )
    p_lint.add_argument(
        "--code", action="store_true",
        help="run the code-conventions lint (repro.check.codelint) over "
             "src/repro instead of the schedule lint",
    )

    p_proto = sub.add_parser(
        "check-protocol",
        help="explicit-state model checking of the runtime protocol "
             "(repro.check): exhaustively explore adversarial "
             "interleavings of small instances",
    )
    p_proto.add_argument(
        "--family", action="append", default=None, metavar="SPEC",
        help="instance spec 'family:n' with n in 2..8 (repeatable; "
             "default: the committed path/star/complete x 3..5 matrix)",
    )
    p_proto.add_argument(
        "--crashes", type=int, default=1,
        help="max simultaneous crash victims per scenario (0 = fault-free "
             "only; default 1)",
    )
    p_proto.add_argument(
        "--budget", type=int, default=None,
        help="per-scenario explored-state budget (default 250000)",
    )
    p_proto.add_argument(
        "--no-rejoin", action="store_true",
        help="skip the rejoin-recompletion certification at abort states",
    )
    p_proto.add_argument(
        "--trace", action="store_true",
        help="render any counterexample as its full wire-message trace",
    )
    p_proto.add_argument(
        "--json", action="store_true",
        help="emit one machine-readable JSON document (for CI)",
    )
    p_proto.add_argument(
        "--check", action="store_true",
        help="compare state counts against the committed "
             "CHECK_protocol.json and exit non-zero on any violation, "
             "deadlock, or drift",
    )
    p_proto.add_argument(
        "--update", action="store_true",
        help="rewrite CHECK_protocol.json with this run's state counts",
    )
    return parser


def _cmd_gossip(args: argparse.Namespace) -> int:
    graph = family_instance(args.topology, args.n)
    plan = gossip(graph, algorithm=args.algorithm)
    result = plan.execute()
    info = summarize(graph)
    print(f"network   : {graph.name} (n={graph.n}, m={graph.m}, radius={info.radius})")
    print(f"algorithm : {args.algorithm}")
    print(f"total time: {plan.total_time}   (n + r = {graph.n + info.radius}, "
          f"lower bound n - 1 = {graph.n - 1})")
    print(f"complete  : {result.complete}   duplicates: {result.duplicate_deliveries}")
    if args.show_tree:
        print()
        print(render_tree(plan.tree, plan.labeled))
    if args.show_schedule:
        print()
        print(render_schedule(plan.schedule))
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    vertices = args.vertex if args.vertex else [0, 1, 4, 8]
    tables = paper_tables(vertices)
    published = {0: "Table 1", 1: "Table 2", 4: "Table 3", 8: "Table 4"}
    for v in vertices:
        title = published.get(v, f"timeline of vertex {v}")
        print(render_timeline(tables[v], title=f"{title} — vertex with message {v}:"))
        print()
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.epidemic:
        from .analysis.comparison import run_epidemic_comparison

        report = run_epidemic_comparison(
            args.families,  # None = all families
            n=args.n,
            trials=args.trials,
            seed=args.seed,
            drop_rates=tuple(args.drop),
            fail_stop_rates=tuple(args.fail_stop),
        )
        print(report.format())
        if args.check:
            report.check()
            print("check: makespan + resilience gates hold  OK")
        return 0
    graphs = [
        family_instance(fam, n)
        for fam in (args.families or sorted(FAMILIES))
        for n in args.sizes
    ]
    rows = comparison_table(graphs)
    print(format_comparison(rows))
    return 0


def _cmd_paper(_args: argparse.Namespace) -> int:
    from .networks.paper_networks import (
        fig1_ring,
        fig4_network,
        fig5_tree,
        n3_multicast_schedule,
        n3_network,
        petersen,
        petersen_gossip_schedule,
    )
    from .core.ring import hamiltonian_circuit, ring_gossip
    from .networks.spanning_tree import minimum_depth_spanning_tree
    from .simulator.validator import assert_gossip_schedule

    ring = fig1_ring()
    assert_gossip_schedule(ring, ring_gossip(list(range(ring.n))), max_total_time=ring.n - 1)
    print(f"Fig. 1  ring n={ring.n}: gossip in n-1 = {ring.n - 1} rounds  OK")

    p = petersen()
    assert hamiltonian_circuit(p) is None
    assert_gossip_schedule(p, petersen_gossip_schedule(), max_total_time=9)
    print("Fig. 2  Petersen: no Hamiltonian circuit; telephone gossip in 9 rounds  OK")

    n3 = n3_network()
    assert hamiltonian_circuit(n3) is None
    assert_gossip_schedule(n3, n3_multicast_schedule(), max_total_time=4)
    print("Fig. 3  N3: no Hamiltonian circuit; multicast gossip in n-1 = 4 rounds  OK")

    tree = minimum_depth_spanning_tree(fig4_network())
    assert tree == fig5_tree()
    print("Fig. 4/5: minimum-depth spanning tree reproduces the labelled example  OK")

    plan = gossip(fig4_network())
    plan.execute()
    print(
        f"Theorem 1 on Fig. 4: ConcurrentUpDown finishes in "
        f"{plan.total_time} = n + r = {plan.graph.n + tree.height} rounds  OK"
    )
    return 0


def _cmd_broadcast(args: argparse.Namespace) -> int:
    from .core.broadcast import broadcast, broadcast_time, telephone_broadcast

    graph = family_instance(args.topology, args.n)
    source = args.source % graph.n
    multicast = broadcast(graph, source)
    telephone = telephone_broadcast(graph, source)
    print(f"network  : {graph.name}  n={graph.n}  source={source} "
          f"(eccentricity {broadcast_time(graph, source)})")
    print(f"multicast: {multicast.total_time} rounds (optimal: = eccentricity)")
    print(f"telephone: {telephone.total_time} rounds "
          f"(>= max(ecc, ceil(log2 n)))")
    return 0


def _cmd_weighted(args: argparse.Namespace) -> int:
    import numpy as np

    from .core.weighted import weighted_gossip

    graph = family_instance(args.topology, args.n)
    rng = np.random.default_rng(0)
    weights = [int(w) for w in rng.integers(1, args.max_weight + 1, size=graph.n)]
    plan = weighted_gossip(graph, weights)
    result = plan.execute()
    print(f"network : {graph.name}  n={graph.n}  weights 1..{args.max_weight}")
    print(f"messages: N = {plan.total_messages}   expanded height r' = "
          f"{plan.expanded.height}")
    print(f"schedule: {plan.total_time} rounds = N + r'   complete={result.complete}")
    print(f"mimicking: at most {max(plan.real_round_load().values())} virtual "
          "sends per real processor per round")
    return 0


def _cmd_online(args: argparse.Namespace) -> int:
    from .core.concurrent_updown import concurrent_updown
    from .core.online import run_online_gossip
    from .networks.spanning_tree import minimum_depth_spanning_tree
    from .tree.labeling import LabeledTree

    graph = family_instance(args.topology, args.n)
    labeled = LabeledTree(minimum_depth_spanning_tree(graph))
    online = run_online_gossip(labeled)
    offline = concurrent_updown(labeled)
    identical = online.rounds == offline.rounds
    print(f"network : {graph.name}  n={graph.n}")
    print(f"online  : {online.total_time} rounds from (i, j, k)-local knowledge")
    print(f"offline : {offline.total_time} rounds")
    print(f"schedules identical: {identical}")
    return 0 if identical else 1


def _cmd_repeated(args: argparse.Namespace) -> int:
    from .core.repeated import repeated_gossip
    from .networks.spanning_tree import minimum_depth_spanning_tree
    from .tree.labeling import LabeledTree

    graph = family_instance(args.topology, args.n)
    labeled = LabeledTree(minimum_depth_spanning_tree(graph))
    plan = repeated_gossip(labeled, instances=args.instances)
    result = plan.execute()
    print(f"network  : {graph.name}  n={graph.n}  instances={args.instances}")
    print(f"offset   : {plan.offset} rounds between instance starts "
          f"(capacity floor n-1 = {graph.n - 1})")
    print(f"total    : {plan.total_time} rounds vs sequential "
          f"{plan.sequential_time}; amortised {plan.amortised_time:.1f}/instance")
    print(f"complete : {result.complete}")
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    """Measured schedule lengths vs every closed form the paper states."""
    from .core.updown import updown_total_time_bound
    from .networks.properties import radius as graph_radius

    header = (f"{'network':<18} {'n':>4} {'r':>3} "
              f"{'concurrent':>11} {'=n+r':>5} "
              f"{'simple':>7} {'=2n+r-3':>8} "
              f"{'updown':>7} {'<=n+3r-2':>9}")
    print(header)
    print("-" * len(header))
    exact = True
    for family in args.families:
        for n in args.sizes:
            g = family_instance(family, n)
            r = graph_radius(g)
            concurrent = gossip(g).total_time
            simple = gossip(g, algorithm="simple").total_time
            updown = gossip(g, algorithm="updown").total_time
            budget = updown_total_time_bound(g.n, r)
            print(f"{g.name:<18} {g.n:>4} {r:>3} "
                  f"{concurrent:>11} {g.n + r:>5} "
                  f"{simple:>7} {2 * g.n + r - 3:>8} "
                  f"{updown:>7} {budget:>9}")
            exact &= concurrent == g.n + r and simple == 2 * g.n + r - 3
            exact &= updown <= budget
    print()
    print("all bounds hold exactly" if exact else "BOUND VIOLATION — see above")
    return 0 if exact else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from .service.workload import bench_plan_cache

    graph = family_instance(args.topology, args.n)
    result = bench_plan_cache(
        graph,
        algorithm=args.algorithm,
        batch_size=args.batch,
        warm_rounds=args.warm_rounds,
    )
    print(result.format())
    if args.check:
        try:
            result.check()
        except AssertionError as err:
            print(f"CHECK FAILED: {err}")
            return 1
        print("check: warm hit >= 10x faster than cold planning  OK")
    return 0


def _cmd_serve_stats(args: argparse.Namespace) -> int:
    from .service.workload import run_synthetic_workload

    stats = run_synthetic_workload(
        families=args.families,
        sizes=args.sizes,
        requests=args.requests,
        algorithm=args.algorithm,
    )
    print(f"workload  : {args.requests} requests over "
          f"{len(args.families) * len(args.sizes)} networks "
          f"({', '.join(args.families)} x {args.sizes})")
    print(stats.format())
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .analysis.chaos import run_chaos_sweep
    from .exceptions import SweepTimeoutError

    if args.permanent is not None:
        # Permanent-failure mode: transient repair cannot help once
        # processors are gone for good, so route through survival.
        from .analysis.survival import run_survival_sweep

        drops = args.drop if args.drop is not None else [0.0]
        try:
            report = run_survival_sweep(
                families=args.family or ["random:48"],
                fail_stop_rates=args.permanent,
                trials=args.trials,
                seed=args.seed,
                algorithm=args.algorithm,
                drop_rate=drops[0],
                deadline=args.timeout,
            )
        except SweepTimeoutError as err:
            print(f"TIMEOUT: {err}")
            return 1
        print(report.format())
        if args.check:
            try:
                report.check()
            except AssertionError as err:
                print(f"CHECK FAILED: {err}")
                return 1
            print("check: full survivor coverage, typed partitions, "
                  "degraded bound hold  OK")
        return 0

    try:
        report = run_chaos_sweep(
            families=args.family or ["random:48"],
            drop_rates=args.drop if args.drop is not None else [0.2],
            trials=args.trials,
            seed=args.seed,
            algorithm=args.algorithm,
            max_repair_rounds=args.max_repair_rounds,
            link_outage_rate=args.link_outage,
            crash_rate=args.crash,
            deadline=args.timeout,
        )
    except SweepTimeoutError as err:
        print(f"TIMEOUT: {err}")
        return 1
    print(report.format())
    if args.check:
        try:
            report.check()
        except AssertionError as err:
            print(f"CHECK FAILED: {err}")
            return 1
        print("check: completion >= 95% and all repairs verified fault-free  OK")
    return 0


def _cmd_survive(args: argparse.Namespace) -> int:
    from .analysis.survival import run_survival_sweep
    from .exceptions import SweepTimeoutError

    try:
        report = run_survival_sweep(
            families=args.family or ["random:48"],
            fail_stop_rates=(
                args.fail_stop if args.fail_stop is not None else [0.02]
            ),
            trials=args.trials,
            seed=args.seed,
            algorithm=args.algorithm,
            link_fail_rate=args.link_fail,
            drop_rate=args.drop,
            deadline=args.timeout,
        )
    except SweepTimeoutError as err:
        print(f"TIMEOUT: {err}")
        return 1
    print(report.format())
    if args.check:
        try:
            report.check()
        except AssertionError as err:
            print(f"CHECK FAILED: {err}")
            return 1
        print("check: full survivor coverage, typed partitions, "
              "degraded bound hold  OK")
    return 0


def _parse_kill_specs(specs: "Optional[List[str]]", flag: str
                      ) -> "Optional[List[tuple]]":
    """Parse repeatable ``V:R`` kill specs; None on a malformed one."""
    kills = []
    for spec in specs or []:
        vertex, _, rnd = spec.partition(":")
        try:
            kills.append((int(vertex), int(rnd)))
        except ValueError:
            print(f"bad {flag} spec {spec!r}; want V:R with integers")
            return None
    return kills


def _cmd_run_net(args: argparse.Namespace) -> int:
    """Run gossip over real UDP sockets, report the runtime result."""
    from .exceptions import RuntimeDeadlineError
    from .runtime import (
        NetChaos,
        RealClock,
        RuntimeConfig,
        ScaledClock,
        run_gossip_network,
    )

    kills = _parse_kill_specs(args.kill, "--kill")
    if kills is None:
        return 2
    if getattr(args, "processes", False):
        # Reroute through the supervised multi-process runtime: the
        # kill specs become real SIGKILLs and resolution follows the
        # default replan policy.
        args.sigkill = args.kill
        args.policy = "replan"
        args.max_restarts = 3
        args.rejoin_crashes = 0
        args.journal = None
        return _cmd_run_proc(args)
    chaos = NetChaos(
        seed=args.seed,
        drop_rate=args.drop,
        delay_rate=args.delay,
        delay_max=args.delay_max if args.delay > 0 else 0.0,
        kill=tuple(kills),
    )
    config = RuntimeConfig(run_timeout=args.timeout, seed=args.seed)
    clock = RealClock() if args.time_scale >= 1.0 else ScaledClock(args.time_scale)

    plan = gossip(args.family, algorithm=args.algorithm)
    try:
        result = run_gossip_network(plan, chaos=chaos, config=config, clock=clock)
    except RuntimeDeadlineError as err:
        print(f"DEADLINE ({err.phase}): {err}")
        return 1
    print(f"network   : {plan.graph.name}  n={result.n}  "
          f"horizon={result.horizon} rounds")
    print(f"chaos     : drop={args.drop:.2f} delay={args.delay:.2f} "
          f"kill={kills or 'none'} seed={args.seed}")
    print(f"complete  : {result.complete}   coverage={result.coverage:.1%}   "
          f"makespan={'n/a' if result.makespan is None else f'{result.makespan:.3f}s'}")
    print(f"rounds    : {result.rounds_completed} online"
          + (f" + {result.survival_rounds} survival" if result.survival_rounds else ""))
    print(f"transport : {result.stats.sent} sent, {result.stats.dropped} dropped, "
          f"{result.stats.delayed} delayed, {result.retransmissions} retransmitted, "
          f"{result.duplicates_suppressed} duplicates absorbed")
    if result.dead:
        print(f"failures  : dead={list(result.dead)}  "
              f"components={[list(c) for c in result.components]}")
    offline_ok = True
    if chaos.is_null:
        offline = sorted(
            (t, tx.sender, tx.message, tuple(sorted(tx.destinations)))
            for t, rnd in enumerate(plan.schedule.rounds)
            for tx in rnd
        )
        online = sorted(
            (e.round, e.sender, e.message, e.destinations)
            for e in result.transcript
        )
        offline_ok = offline == online
        print(f"transcript: {'identical to offline schedule' if offline_ok else 'DIVERGED'}")
    if args.check:
        ok = offline_ok and result.coverage == 1.0
        if not ok:
            print("CHECK FAILED: coverage or transcript gate violated")
            return 1
        print("check: full (degraded) coverage and offline-exact transcript  OK")
    return 0


def _cmd_run_proc(args: argparse.Namespace) -> int:
    """Run gossip under the multi-process supervisor, report the story."""
    from .exceptions import RuntimeDeadlineError, SupervisorError
    from .runtime import (
        NetChaos,
        RestartPolicy,
        RuntimeConfig,
        run_gossip_processes,
    )

    sigkills = _parse_kill_specs(args.sigkill, "--sigkill")
    if sigkills is None:
        return 2
    chaos = NetChaos(
        seed=args.seed,
        drop_rate=args.drop,
        delay_rate=args.delay,
        delay_max=args.delay_max if args.delay > 0 else 0.0,
        sigkill=tuple(sigkills),
        rejoin_crashes=args.rejoin_crashes,
    )
    config = RuntimeConfig(run_timeout=args.timeout, seed=args.seed)
    policy = RestartPolicy(mode=args.policy, max_restarts=args.max_restarts)

    plan = gossip(args.family, algorithm=args.algorithm)
    try:
        result = run_gossip_processes(
            plan, chaos=chaos, config=config, policy=policy,
            time_scale=args.time_scale,
        )
    except RuntimeDeadlineError as err:
        print(f"DEADLINE ({err.phase}): {err}")
        return 1
    except SupervisorError as err:
        print(f"SUPERVISOR ERROR: {err}")
        for incident in err.incidents:
            print(f"  {incident.to_json()}")
        return 1
    print(f"network   : {plan.graph.name}  n={result.n}  "
          f"horizon={result.horizon} rounds  (1 OS process per peer)")
    print(f"chaos     : drop={args.drop:.2f} delay={args.delay:.2f} "
          f"sigkill={sigkills or 'none'} seed={args.seed}")
    print(f"resolved  : mode={result.mode}  complete={result.complete}  "
          f"coverage={result.coverage:.1%}  restarts={result.restarts}")
    print(f"rounds    : {result.rounds_completed} online"
          + (f" + {result.survival_rounds} "
             + ("rejoin-completion" if result.mode == "rejoin" else "survival")
             if result.survival_rounds else ""))
    print(f"transport : {result.stats.sent} sent, {result.stats.dropped} dropped, "
          f"{result.stats.delayed} delayed, {result.retransmissions} retransmitted, "
          f"{result.duplicates_suppressed} duplicates absorbed")
    if result.dead:
        print(f"failures  : dead={list(result.dead)}  "
              f"components={[list(c) for c in result.components]}")
    if result.incidents:
        print(f"incidents : {len(result.incidents)}")
        for incident in result.incidents:
            print(f"  [{incident.wall_seconds:7.3f}s] {incident.kind:<20} "
                  f"vertex={incident.vertex:>3}  via {incident.detected_by}  "
                  f"{incident.details}")
    if args.journal:
        with open(args.journal, "w", encoding="utf-8") as fh:
            for incident in result.incidents:
                fh.write(incident.to_json() + "\n")
        print(f"wrote {args.journal}")
    offline_ok = True
    if chaos.is_null:
        offline = sorted(
            (t, tx.sender, tx.message, tuple(sorted(tx.destinations)))
            for t, rnd in enumerate(plan.schedule.rounds)
            for tx in rnd
        )
        online = sorted(
            (e.round, e.sender, e.message, e.destinations)
            for e in result.transcript
        )
        offline_ok = offline == online
        print("transcript: "
              f"{'identical to offline schedule' if offline_ok else 'DIVERGED'}")
    if args.check:
        detected = all(
            any(i.vertex == victim for i in result.incidents
                if i.kind in ("crash-detected", "suspicion"))
            for victim, _ in sigkills
        )
        ok = offline_ok and result.coverage == 1.0 and detected
        if not ok:
            print("CHECK FAILED: coverage, transcript or detection gate violated")
            return 1
        print("check: death detection, full (degraded) coverage and "
              "offline-exact transcript  OK")
    return 0


def _cmd_plan_bench(args: argparse.Namespace) -> int:
    from .analysis.planner_bench import QUICK_SPECS, run_planner_bench

    specs = args.spec
    if specs is None and args.quick:
        specs = list(QUICK_SPECS)
    report = run_planner_bench(specs, repeats=args.repeats)
    print(report.format())
    if args.json:
        report.write_json(args.json)
        print(f"wrote {args.json}")
    if args.check:
        try:
            report.check()
        except AssertionError as err:
            print(f"CHECK FAILED: {err}")
            return 1
        print(
            "check: bit-identical trees, identical schedules, and "
            "planner speedup + cold-plan gates hold  OK"
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Plan each requested network, statically analyze, render diagnostics."""
    import json as json_mod

    from .lint import lint_schedule

    if args.code:
        import pathlib

        from .check.codelint import (
            collect_violations,
            tracked_artifact_violations,
        )

        package_root = pathlib.Path(__file__).resolve().parent
        violations = collect_violations([package_root])
        violations.extend(
            tracked_artifact_violations(package_root.parents[1])
        )
        for path, line, message in violations:
            print(f"{path}:{line}: {message}")
        if violations:
            print(f"\n{len(violations)} convention violation(s)")
            return 1
        print("conventions: OK")
        return 0

    if args.all:
        specs = [f"{fam}:{args.n}" for fam in sorted(FAMILIES)]
    elif args.family is not None:
        specs = list(args.family)
    else:
        specs = ["grid:16", "path:16", "star:16", "hypercube:16", "random:24"]

    results = []
    failures = 0
    for spec in specs:
        fam, _, size = spec.partition(":")
        graph = family_instance(fam, int(size) if size else args.n)
        plan = gossip(graph, algorithm=args.algorithm)
        # Lint straight off the canonical array form — same diagnostics
        # as the object view (the differential tests pin that), and the
        # byte size it reports is the cache-weight unit.
        report = lint_schedule(plan.graph, plan.arrays(), plan=plan)
        results.append((spec, plan, report))
        if not report.ok:
            failures += 1

    if args.json:
        doc = {
            "algorithm": args.algorithm,
            "ok": failures == 0,
            "reports": [
                dict(
                    report.to_dict(),
                    spec=spec,
                    schedule_nbytes=plan.arrays().nbytes,
                )
                for spec, plan, report in results
            ],
        }
        print(json_mod.dumps(doc, indent=2))
    else:
        for spec, _plan, report in results:
            verdict = "ok" if report.ok else "FAIL"
            print(f"{spec:<18} {verdict:>4}  {len(report.errors)} error(s), "
                  f"{len(report.warnings)} warning(s)")
            shown = report.diagnostics if not args.no_warnings else report.errors
            for diag in shown:
                print(f"    {diag.format()}")
        print(f"\nlinted {len(results)} plan(s) "
              f"({args.algorithm}): {failures} with errors")
    if args.check and failures:
        return 1
    return 0


def _cmd_check_protocol(args: argparse.Namespace) -> int:
    """Model-check the runtime protocol on small adversarial instances."""
    import json as json_mod
    import pathlib

    from .check.explore import (
        DEFAULT_BUDGET,
        MATRIX_FAMILIES,
        MATRIX_SIZES,
        check_family,
        parse_family_spec,
        plan_for,
    )
    from .check.model import ProtocolModel

    from .exceptions import ProtocolCheckError

    budget = args.budget if args.budget is not None else DEFAULT_BUDGET
    try:
        if args.family:
            specs = [parse_family_spec(spec) for spec in args.family]
        else:
            specs = [(fam, n) for fam in MATRIX_FAMILIES for n in MATRIX_SIZES]
    except ProtocolCheckError as exc:
        print(f"check-protocol: {exc}", file=sys.stderr)
        return 2
    rejoin = not args.no_rejoin

    summaries: Dict[str, Dict[str, int]] = {}
    total_states = 0
    total_transitions = 0
    failed = False
    for family, n in specs:
        spec = f"{family}:{n}"
        try:
            result = check_family(
                family, n, crashes=args.crashes, budget=budget, rejoin=rejoin
            )
        except ProtocolCheckError as exc:
            print(f"check-protocol: {spec}: {exc}", file=sys.stderr)
            return 2
        summaries[spec] = result.summary()
        total_states += result.states
        total_transitions += result.transitions
        if result.ok:
            if not args.json:
                print(
                    f"{spec:<14} ok    scenarios={result.scenarios:<4} "
                    f"states={result.states:<8} "
                    f"transitions={result.transitions:<8} "
                    f"fallback={result.fallback_states}"
                )
        else:
            failed = True
            cex = result.counterexample
            assert cex is not None
            print(f"{spec:<14} FAIL  {cex.violation}")
            if args.trace:
                model = ProtocolModel(plan_for(family, n), crash=cex.scenario)
                print(cex.render(model))
            else:
                print("    (re-run with --trace for the wire-message trace)")

    doc = {
        "check": "protocol",
        "crashes": args.crashes,
        "budget": budget,
        "ok": not failed,
        "families": summaries,
    }
    artifact = pathlib.Path(__file__).resolve().parents[2] / "CHECK_protocol.json"

    if args.json:
        print(json_mod.dumps(doc, indent=2))
    else:
        print(
            f"\nchecked {len(specs)} instance(s) "
            f"(crashes<={args.crashes}): {total_states} states, "
            f"{total_transitions} transitions"
        )
    if failed:
        return 1

    if args.update:
        artifact.write_text(json_mod.dumps(doc, indent=2) + "\n",
                            encoding="utf-8")
        if not args.json:
            print(f"wrote {artifact}")
    if args.check:
        if not artifact.exists():
            print(f"check: {artifact} missing; run with --update first")
            return 1
        committed = json_mod.loads(artifact.read_text(encoding="utf-8"))
        drift: List[str] = []
        for spec, summary in summaries.items():
            pinned = committed.get("families", {}).get(spec)
            if pinned is None:
                drift.append(f"{spec}: not in the committed matrix")
            elif pinned != summary:
                drift.append(f"{spec}: committed {pinned} != explored {summary}")
        if drift:
            for line in drift:
                print(f"check: state-count drift — {line}")
            return 1
        if not args.json:
            print("check: all invariants hold and state counts match "
                  "the committed matrix  OK")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "gossip": _cmd_gossip,
        "tables": _cmd_tables,
        "compare": _cmd_compare,
        "paper": _cmd_paper,
        "broadcast": _cmd_broadcast,
        "weighted": _cmd_weighted,
        "online": _cmd_online,
        "repeated": _cmd_repeated,
        "bounds": _cmd_bounds,
        "bench": _cmd_bench,
        "serve-stats": _cmd_serve_stats,
        "chaos": _cmd_chaos,
        "survive": _cmd_survive,
        "run-net": _cmd_run_net,
        "run-proc": _cmd_run_proc,
        "plan-bench": _cmd_plan_bench,
        "lint": _cmd_lint,
        "check-protocol": _cmd_check_protocol,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
