"""Cache-aware topology maintenance: :class:`MaintainedNetwork`.

:class:`~repro.networks.dynamic.TreeMaintainer` answers *when to rebuild
the spanning tree* under churn (Section 4's eager/lazy policies);
``MaintainedNetwork`` adds the serving consequence: what happens to the
plans already cached for the network.

On every mutation exactly one of two things happens:

* **patch** — the maintained tree survived the change (a new edge, or a
  removed non-tree edge under the lazy policy).  The paper's schedules
  only ever use tree edges, so every cached plan for the old graph and
  this tree is still valid verbatim; it is re-homed under the new
  graph's fingerprint without re-planning.
* **invalidate** — the tree was rebuilt (a tree edge died, or the
  policy is eager and the rebuild produced a different tree).  All
  cached plans for the *old* graph are dropped: the maintained network
  has moved on, and nothing may ever serve a plan whose tree uses a
  deleted edge.

Either way the rest of the cache — plans for unrelated networks — is
untouched; churn on one maintained network never flushes another's
entries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.gossip import GossipPlan
from ..networks.dynamic import TreeMaintainer
from ..networks.graph import Graph
from ..tree.tree import Tree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .service import GossipService

__all__ = ["MaintainedNetwork"]


class MaintainedNetwork:
    """A :class:`TreeMaintainer` bound to a :class:`GossipService` cache.

    Obtained from :meth:`GossipService.maintain`.  Unlike the immutable
    maintainer it wraps, this handle is deliberately *stateful*: it is
    the identity under which a slowly-changing network keeps requesting
    plans, and the cache bookkeeping rides on its mutations.

    Not thread-safe for concurrent *mutation* (mutate from one writer;
    ``plan()`` may be called from any thread).
    """

    def __init__(self, service: "GossipService", maintainer: TreeMaintainer) -> None:
        self._service = service
        self._maintainer = maintainer

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The current network."""
        return self._maintainer.graph

    @property
    def tree(self) -> Tree:
        """The maintained communication tree."""
        return self._maintainer.tree

    @property
    def policy(self) -> str:
        """The maintenance policy (``"eager"`` or ``"lazy"``)."""
        return self._maintainer.policy

    @property
    def rebuilds(self) -> int:
        """Cumulative tree constructions, including the initial one."""
        return self._maintainer.rebuilds

    @property
    def maintainer(self) -> TreeMaintainer:
        """The current immutable maintainer snapshot."""
        return self._maintainer

    @property
    def schedule_bound(self) -> int:
        """Current guarantee ``n + height(maintained tree)``."""
        return self._maintainer.schedule_bound

    # ------------------------------------------------------------------
    def plan(self, *, algorithm: Optional[str] = None) -> GossipPlan:
        """Serve a plan for the current graph on the maintained tree.

        Keyed by ``(graph, tree, algorithm)`` fingerprints, so two
        maintained networks that reached the same graph with *different*
        lazy trees never share entries.
        """
        return self._service.plan(self.graph, tree=self.tree, algorithm=algorithm)

    def add_edge(self, u: int, v: int) -> "MaintainedNetwork":
        """Insert a link, patching or invalidating cached plans. Returns self."""
        self._transition(self._maintainer.add_edge(u, v))
        return self

    def remove_edge(self, u: int, v: int) -> "MaintainedNetwork":
        """Remove a link, patching or invalidating cached plans. Returns self.

        Raises :class:`~repro.exceptions.GraphError` if the removal would
        disconnect the network (the maintainer's own check) — in that
        case neither the maintainer nor the cache changes.
        """
        self._transition(self._maintainer.remove_edge(u, v))
        return self

    def refreshed(self) -> "MaintainedNetwork":
        """Force a tree rebuild now (see :meth:`TreeMaintainer.refreshed`)."""
        self._transition(self._maintainer.refreshed())
        return self

    # ------------------------------------------------------------------
    def _transition(self, new: TreeMaintainer) -> None:
        old = self._maintainer
        self._service._note_rebuilds(new.rebuilds - old.rebuilds)
        if new.tree == old.tree:
            # Tree survived: every cached plan for (old graph, tree) is
            # still valid on the new graph — re-home instead of re-plan.
            if new.graph is not old.graph:
                self._service._patch_entries(old.graph, new.graph, tree=old.tree)
        else:
            # Tree rebuilt: the old graph's entries are superseded; drop
            # them so no plan over the old tree can ever be served again
            # for this network's lineage.
            self._service._drop_graph_entries(old.graph)
        self._maintainer = new

    def __repr__(self) -> str:
        return (
            f"MaintainedNetwork(n={self.graph.n}, m={self.graph.m}, "
            f"policy={self.policy!r}, rebuilds={self.rebuilds})"
        )
