"""Serving layer: cached, concurrent gossip-plan serving.

The paper's setting (Section 4) has networks that "remain constant for
long periods of time" while gossip runs repeatedly — so the expensive
pipeline (minimum-depth spanning tree -> DFS labelling -> schedule)
should be computed once per network and *served* thereafter.  This
package is that serving layer:

* :class:`~repro.service.service.GossipService` — the front end:
  content-addressed plan cache, request coalescing, batch fan-out,
  topology maintenance hooks;
* :class:`~repro.service.cache.PlanCache` — the bounded thread-safe LRU
  underneath;
* :class:`~repro.service.breaker.CircuitBreaker` — the per-key circuit
  breaker behind the service's ``breaker_threshold`` option;
* :class:`~repro.service.maintenance.MaintainedNetwork` — churn-aware
  cache patching/invalidation on top of
  :class:`~repro.networks.dynamic.TreeMaintainer`;
* :class:`~repro.service.stats.ServiceStats` — instrumentation;
* :mod:`~repro.service.workload` — the measurement workloads behind
  ``repro.cli bench`` / ``serve-stats`` and the cache benchmark.

Quickstart
----------
>>> from repro.service import GossipService
>>> from repro.networks import topologies
>>> service = GossipService()
>>> plan = service.plan(topologies.grid_2d(4, 4))   # cold: plans + caches
>>> service.plan(topologies.grid_2d(4, 4)) is plan  # warm: served from cache
True
"""

from .breaker import CircuitBreaker
from .cache import PlanCache, PlanKey, plan_weight, tree_fingerprint
from .maintenance import MaintainedNetwork
from .service import ExecutionOutcome, GossipService, Planner
from .stats import ServiceStats, StatsRecorder
from .workload import CacheBenchResult, bench_plan_cache, run_synthetic_workload

__all__ = [
    "ExecutionOutcome",
    "GossipService",
    "Planner",
    "CircuitBreaker",
    "PlanCache",
    "PlanKey",
    "plan_weight",
    "tree_fingerprint",
    "MaintainedNetwork",
    "ServiceStats",
    "StatsRecorder",
    "CacheBenchResult",
    "bench_plan_cache",
    "run_synthetic_workload",
]
