"""Instrumentation for :class:`repro.service.GossipService`.

Two halves:

* :class:`StatsRecorder` — the mutable, thread-safe collector the
  service updates on every request (counters plus a bounded reservoir of
  plan-build latencies);
* :class:`ServiceStats` — an immutable snapshot in the style of
  :class:`repro.simulator.metrics.ScheduleMetrics`, with nearest-rank
  latency percentiles, suitable for printing or asserting on.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Sequence

__all__ = ["ServiceStats", "StatsRecorder"]


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty sequence."""
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[int(rank)]


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time statistics of one :class:`GossipService`.

    Attributes
    ----------
    requests:
        Total ``plan()`` calls answered (including waiters coalesced
        onto another thread's in-flight build).
    hits / misses:
        Cache outcomes; ``misses`` equals the number of *planning runs*
        — concurrent requests for the same key coalesce into one build
        and the waiters count as hits.
    patched:
        Cached plans re-homed onto a mutated graph without re-planning
        (lazy maintenance of a surviving tree).
    invalidations:
        Entries dropped because a topology change superseded their tree.
    evictions:
        Entries dropped by the LRU / weight bounds.
    rebuilds:
        Spanning-tree rebuilds performed by maintained networks.
    batches:
        ``plan_many()`` calls.
    entries / weight:
        Current cache occupancy (entry count and summed ``n + m``).
    plan_p50_ms / plan_p90_ms / plan_p99_ms / plan_max_ms:
        Nearest-rank percentiles of *cold* plan-build latency in
        milliseconds (``None`` until the first build).
    hit_p50_ms:
        Median end-to-end latency of cache hits, for the warm/cold
        contrast the benchmarks report.
    timeouts:
        Planner builds abandoned because they exceeded the service's
        ``planner_timeout``.
    retries:
        Planner re-invocations after a transient failure (bounded by
        the service's ``retries`` setting per request).
    degraded:
        Requests served by the fallback algorithm's plan because the
        primary planner timed out or kept failing — or because an open
        circuit breaker short-circuited the primary entirely.
    breaker_opens:
        Circuit-breaker trips: transitions into the open state (either
        the consecutive-failure threshold was reached or a half-open
        probe failed).
    breaker_probes:
        Half-open probes dispatched after a cooldown elapsed.
    breaker_closes:
        Successful probes that healed a breaker (half-open -> closed).
    fast_fails:
        Requests rejected with
        :class:`~repro.exceptions.CircuitOpenError` because the breaker
        was open and no degraded fallback was configured.
    lints:
        Static-analysis runs performed on freshly-built plans (the
        service's ``lint="warn"`` / ``lint="error"`` admission gate).
    lint_errors:
        Error-severity diagnostics found across those runs.  Under
        ``lint="error"`` each finding also means a plan was refused
        cache admission with
        :class:`~repro.exceptions.ScheduleLintError`.
    executions:
        ``execute()`` requests answered with a result (including
        degraded ones) — the execution-side mirror of ``requests``.
    exec_failures:
        Runtime *availability* failures observed while executing
        (deadlines, supervisor control-plane errors, transient crashes
        that survived the retry budget).  These are the failures that
        count against the per-key execution breaker.
    exec_retries:
        Runtime re-runs after a transient execution failure (bounded by
        the service's ``retries`` setting per request).
    exec_degraded:
        ``execute()`` requests served degraded — a partial result
        carried by a missed deadline, or the offline simulator standing
        in for a runtime the breaker has given up on.
    exec_fast_fails:
        ``execute()`` requests rejected with
        :class:`~repro.exceptions.CircuitOpenError` because the
        execution breaker was open and degraded serving was disabled.
    """

    requests: int
    hits: int
    misses: int
    patched: int
    invalidations: int
    evictions: int
    rebuilds: int
    batches: int
    entries: int
    weight: int
    plan_p50_ms: Optional[float]
    plan_p90_ms: Optional[float]
    plan_p99_ms: Optional[float]
    plan_max_ms: Optional[float]
    hit_p50_ms: Optional[float]
    timeouts: int = 0
    retries: int = 0
    degraded: int = 0
    breaker_opens: int = 0
    breaker_probes: int = 0
    breaker_closes: int = 0
    fast_fails: int = 0
    lints: int = 0
    lint_errors: int = 0
    executions: int = 0
    exec_failures: int = 0
    exec_retries: int = 0
    exec_degraded: int = 0
    exec_fast_fails: int = 0

    @property
    def hit_rate(self) -> Optional[float]:
        """Fraction of requests served from cache (None before traffic)."""
        if self.requests == 0:
            return None
        return self.hits / self.requests

    def format(self) -> str:
        """Multi-line human-readable report (used by ``repro.cli serve-stats``)."""
        rate = "n/a" if self.hit_rate is None else f"{self.hit_rate:6.1%}"

        def ms(x: Optional[float]) -> str:
            return "n/a" if x is None else f"{x:.3f} ms"

        return "\n".join(
            [
                f"requests      : {self.requests}  (batches: {self.batches})",
                f"cache         : {self.hits} hits / {self.misses} misses  "
                f"(hit rate {rate})",
                f"maintenance   : {self.patched} patched, "
                f"{self.invalidations} invalidated, {self.rebuilds} tree rebuilds",
                f"evictions     : {self.evictions}",
                f"occupancy     : {self.entries} plans, weight {self.weight} (n + m)",
                f"resilience    : {self.timeouts} timeouts, {self.retries} retries, "
                f"{self.degraded} degraded",
                f"breaker       : {self.breaker_opens} opens, "
                f"{self.breaker_probes} probes, {self.breaker_closes} closes, "
                f"{self.fast_fails} fast-fails",
                f"lint          : {self.lints} runs, "
                f"{self.lint_errors} error diagnostics",
                f"execution     : {self.executions} runs, "
                f"{self.exec_failures} failures, {self.exec_retries} retries, "
                f"{self.exec_degraded} degraded, "
                f"{self.exec_fast_fails} fast-fails",
                f"build latency : p50 {ms(self.plan_p50_ms)}  "
                f"p90 {ms(self.plan_p90_ms)}  p99 {ms(self.plan_p99_ms)}  "
                f"max {ms(self.plan_max_ms)}",
                f"hit latency   : p50 {ms(self.hit_p50_ms)}",
            ]
        )


class StatsRecorder:
    """Thread-safe mutable counters behind :class:`ServiceStats`.

    Latencies are kept in bounded deques (newest ``maxlen`` samples) so
    a long-lived service never grows without bound; percentiles are over
    that window.
    """

    def __init__(self, latency_window: int = 4096) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.patched = 0
        self.invalidations = 0
        self.evictions = 0
        self.rebuilds = 0
        self.batches = 0
        self.timeouts = 0
        self.retries = 0
        self.degraded = 0
        self.breaker_opens = 0
        self.breaker_probes = 0
        self.breaker_closes = 0
        self.fast_fails = 0
        self.lints = 0
        self.lint_errors = 0
        self.executions = 0
        self.exec_failures = 0
        self.exec_retries = 0
        self.exec_degraded = 0
        self.exec_fast_fails = 0
        self._build_latencies: Deque[float] = deque(maxlen=latency_window)
        self._hit_latencies: Deque[float] = deque(maxlen=latency_window)

    # ------------------------------------------------------------------
    def record_hit(self, seconds: float) -> None:
        with self._lock:
            self.requests += 1
            self.hits += 1
            self._hit_latencies.append(seconds)

    def record_miss(self, build_seconds: float) -> None:
        with self._lock:
            self.requests += 1
            self.misses += 1
            self._build_latencies.append(build_seconds)

    def record_batch(self) -> None:
        with self._lock:
            self.batches += 1

    def record_evictions(self, count: int) -> None:
        if count:
            with self._lock:
                self.evictions += count

    def record_invalidations(self, count: int) -> None:
        if count:
            with self._lock:
                self.invalidations += count

    def record_patched(self, count: int) -> None:
        if count:
            with self._lock:
                self.patched += count

    def record_rebuilds(self, count: int) -> None:
        if count:
            with self._lock:
                self.rebuilds += count

    def record_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def record_retry(self) -> None:
        with self._lock:
            self.retries += 1

    def record_degraded(self) -> None:
        with self._lock:
            self.degraded += 1

    def record_breaker_open(self) -> None:
        with self._lock:
            self.breaker_opens += 1

    def record_probe(self) -> None:
        with self._lock:
            self.breaker_probes += 1

    def record_breaker_close(self) -> None:
        with self._lock:
            self.breaker_closes += 1

    def record_fast_fail(self) -> None:
        with self._lock:
            self.fast_fails += 1

    def record_lint(self, *, errors: int = 0) -> None:
        with self._lock:
            self.lints += 1
            self.lint_errors += errors

    def record_execution(self) -> None:
        with self._lock:
            self.executions += 1

    def record_exec_failure(self) -> None:
        with self._lock:
            self.exec_failures += 1

    def record_exec_retry(self) -> None:
        with self._lock:
            self.exec_retries += 1

    def record_exec_degraded(self) -> None:
        with self._lock:
            self.exec_degraded += 1

    def record_exec_fast_fail(self) -> None:
        with self._lock:
            self.exec_fast_fails += 1

    # ------------------------------------------------------------------
    def snapshot(self, *, entries: int, weight: int) -> ServiceStats:
        """Freeze the counters into a :class:`ServiceStats`."""
        with self._lock:
            builds = sorted(self._build_latencies)
            hits = sorted(self._hit_latencies)

            def pct(vals: Sequence[float], q: float) -> Optional[float]:
                return _percentile(vals, q) * 1e3 if vals else None

            return ServiceStats(
                requests=self.requests,
                hits=self.hits,
                misses=self.misses,
                patched=self.patched,
                invalidations=self.invalidations,
                evictions=self.evictions,
                rebuilds=self.rebuilds,
                batches=self.batches,
                entries=entries,
                weight=weight,
                plan_p50_ms=pct(builds, 0.50),
                plan_p90_ms=pct(builds, 0.90),
                plan_p99_ms=pct(builds, 0.99),
                plan_max_ms=(builds[-1] * 1e3 if builds else None),
                hit_p50_ms=pct(hits, 0.50),
                timeouts=self.timeouts,
                retries=self.retries,
                degraded=self.degraded,
                breaker_opens=self.breaker_opens,
                breaker_probes=self.breaker_probes,
                breaker_closes=self.breaker_closes,
                fast_fails=self.fast_fails,
                lints=self.lints,
                lint_errors=self.lint_errors,
                executions=self.executions,
                exec_failures=self.exec_failures,
                exec_retries=self.exec_retries,
                exec_degraded=self.exec_degraded,
                exec_fast_fails=self.exec_fast_fails,
            )
