"""A per-key circuit breaker for plan building.

Classic three-state breaker (closed → open → half-open), tuned for the
:class:`~repro.service.GossipService` build path:

* **closed** — requests run the planner normally; ``threshold``
  *consecutive* failures (timeouts or transient errors that survived
  the retry budget) trip the breaker;
* **open** — requests are short-circuited without touching the planner
  (served from the degraded fallback, or fast-failed with a typed
  :class:`~repro.exceptions.CircuitOpenError`) until ``cooldown``
  seconds have passed;
* **half-open** — after the cooldown, exactly *one* request is let
  through as a probe; success closes the breaker, failure re-opens it
  for another cooldown.  Concurrent requests during the probe are still
  short-circuited, so a struggling planner never sees a thundering herd.

The breaker itself is clock-agnostic and unlocked: the service passes
``now`` in (injectable clock for tests) and serialises calls under its
own lock.
"""

from __future__ import annotations

from ..exceptions import ReproError

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe.

    Parameters
    ----------
    threshold:
        Consecutive failures that trip the breaker (>= 1).
    cooldown:
        Seconds an open breaker rejects before allowing a probe (> 0).
    """

    __slots__ = ("threshold", "cooldown", "_state", "_failures", "_opened_at")

    def __init__(self, threshold: int, cooldown: float) -> None:
        if threshold < 1:
            raise ReproError("breaker threshold must be >= 1")
        if cooldown <= 0:
            raise ReproError("breaker cooldown must be positive")
        self.threshold = threshold
        self.cooldown = cooldown
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """Current state: ``"closed"``, ``"open"`` or ``"half-open"``."""
        return self._state

    @property
    def consecutive_failures(self) -> int:
        """Consecutive failures recorded since the last success."""
        return self._failures

    def retry_after(self, now: float) -> float:
        """Seconds until an open breaker will allow a probe (0 otherwise)."""
        if self._state != OPEN:
            return 0.0
        return max(0.0, self.cooldown - (now - self._opened_at))

    # ------------------------------------------------------------------
    def acquire(self, now: float) -> str:
        """Gate one request: ``"allow"``, ``"probe"`` or ``"reject"``.

        ``"probe"`` moves the breaker to half-open and is handed to
        exactly one caller per cooldown expiry; the caller *must* report
        back via :meth:`record_success`, :meth:`record_failure` or
        :meth:`cancel_probe`.
        """
        if self._state == CLOSED:
            return "allow"
        if self._state == OPEN and now - self._opened_at >= self.cooldown:
            self._state = HALF_OPEN
            return "probe"
        # Open and cooling down, or a probe already in flight.
        return "reject"

    def record_success(self) -> bool:
        """Note a successful build; returns True on a half-open → closed
        transition (the breaker healed)."""
        healed = self._state == HALF_OPEN
        self._state = CLOSED
        self._failures = 0
        return healed

    def record_failure(self, now: float) -> bool:
        """Note a failed build; returns True when this failure *opens*
        the breaker (threshold reached, or a probe failed)."""
        self._failures += 1
        if self._state == HALF_OPEN or (
            self._state == CLOSED and self._failures >= self.threshold
        ):
            self._state = OPEN
            self._opened_at = now
            return True
        return False

    def cancel_probe(self) -> None:
        """Abort a probe that never exercised the planner (e.g. the
        build raised a deterministic input error): back to open with the
        original timestamp, so the next request may probe again."""
        if self._state == HALF_OPEN:
            self._state = OPEN

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self._state!r}, "
            f"failures={self._failures}/{self.threshold}, "
            f"cooldown={self.cooldown})"
        )
