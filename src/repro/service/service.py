"""The plan-serving front end: :class:`GossipService`.

The paper assumes networks "remain constant for long periods of time"
(Section 4) — exactly the regime where re-deriving the spanning tree,
labelling, and schedule on every :func:`~repro.core.gossip.gossip` call
is wasted work.  ``GossipService`` amortises it:

* plans are cached content-addressed — the key is
  ``(Graph.canonical_hash(), tree fingerprint, algorithm)`` — with LRU
  and total-weight bounds (:class:`~repro.service.cache.PlanCache`);
* concurrent requests for the same network **coalesce**: exactly one
  thread runs the planner, everyone else waits on its future;
* :meth:`plan_many` fans a batch out across a shared
  :class:`~concurrent.futures.ThreadPoolExecutor` (the scipy fast path
  releases the GIL inside its BFS kernels, so batch planning overlaps);
* :meth:`maintain` binds a :class:`~repro.networks.dynamic.TreeMaintainer`
  to the cache so topology churn *patches or invalidates* affected
  entries instead of flushing everything
  (:class:`~repro.service.maintenance.MaintainedNetwork`);
* an optional per-key circuit breaker
  (:class:`~repro.service.breaker.CircuitBreaker`) stops hammering a
  planner that keeps failing: after ``breaker_threshold`` consecutive
  failures the key is served degraded (or fast-failed with a typed
  :class:`~repro.exceptions.CircuitOpenError`) until a half-open probe
  succeeds;
* every request is instrumented
  (:class:`~repro.service.stats.ServiceStats`).

Plan construction is injectable (the ``planner`` argument), which the
tests use to count planning runs and which lets downstream users swap in
custom pipelines while keeping the serving machinery.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

if TYPE_CHECKING:
    from ..runtime.peer import RuntimeConfig
    from ..runtime.runner import RuntimeResult
    from ..runtime.supervisor import RestartPolicy
    from ..runtime.transport import NetChaos
    from ..simulator.engine import ExecutionResult
    from .maintenance import MaintainedNetwork

from ..core.gossip import GossipPlan, NetworkSpec, gossip, resolve_network
from ..exceptions import (
    CircuitOpenError,
    PlanTimeoutError,
    ReproError,
    RuntimeDeadlineError,
    ScheduleLintError,
    SupervisorError,
)
from ..lint import MODEL, PAPER, lint_schedule
from ..networks.graph import Graph
from ..tree.tree import Tree
from .breaker import CircuitBreaker
from .cache import PlanCache, PlanKey, tree_fingerprint
from .stats import ServiceStats, StatsRecorder

__all__ = ["ExecutionOutcome", "GossipService", "Planner"]

#: Execution engines :meth:`GossipService.execute` can drive.
_RUNTIMES = ("simulator", "network", "processes")

#: Signature of an injectable planner (keyword-only after the graph,
#: mirroring :func:`repro.core.gossip.gossip`).
Planner = Callable[..., GossipPlan]


def _fast_planner(
    graph: Graph, *, algorithm: str, tree: Optional[Tree] = None
) -> GossipPlan:
    """Default service planner: :func:`gossip` on the fast-path tree.

    The spanning tree comes from the pruned + batched center sweep
    (:func:`repro.networks.spanning_tree.center_sweep`): a double-sweep
    seed orders candidates near-center-first, cutoff BFS abandons losing
    candidates early, survivors are evaluated 64-at-a-time bit-parallel,
    and the winner's own parent array becomes the tree — no redundant
    traversal.  The result is *bit-identical* to the paper's exhaustive
    O(mn) construction (``benchmarks/bench_planner.py`` gates on it),
    and the heavy lifting happens inside numpy kernels that release the
    GIL, so :meth:`GossipService.plan_many` overlaps across threads.
    """
    if tree is None:
        from ..networks.bfs import require_connected
        from ..networks.spanning_tree import minimum_depth_spanning_tree

        require_connected(graph, "gossiping")
        tree = minimum_depth_spanning_tree(graph)
    return gossip(graph, algorithm=algorithm, tree=tree)


@dataclasses.dataclass(frozen=True)
class ExecutionOutcome:
    """What one :meth:`GossipService.execute` request produced.

    Attributes
    ----------
    plan:
        The (possibly cached) plan that was executed.
    requested:
        The execution engine the caller asked for: ``"simulator"``,
        ``"network"`` or ``"processes"``.
    runtime:
        The engine that actually produced :attr:`result` — differs from
        :attr:`requested` when the service degraded a failing real
        runtime to the offline simulator replay.
    degraded:
        Whether the service had to degrade: the result is either a
        partial :class:`~repro.runtime.runner.RuntimeResult` carried by
        a missed deadline, or the simulator standing in for a runtime
        the execution breaker has given up on.
    result:
        The execution record: an
        :class:`~repro.simulator.engine.ExecutionResult` (simulator), a
        :class:`~repro.runtime.runner.RuntimeResult` (network), or a
        :class:`~repro.runtime.supervisor.ProcResult` (processes).
    """

    plan: GossipPlan
    requested: str
    runtime: str
    degraded: bool
    result: "ExecutionResult | RuntimeResult"


class GossipService:
    """Cached, concurrent gossip-plan serving.

    Parameters
    ----------
    algorithm:
        Default algorithm for requests that don't specify one.
    max_entries / max_weight:
        Bounds of the underlying :class:`PlanCache` (weight is summed
        ``n + m`` per cached plan; ``None`` disables the weight bound).
    max_workers:
        Thread-pool width for :meth:`plan_many` (default: CPU count,
        capped at 8).
    planner:
        Plan constructor, called as ``planner(graph, algorithm=...,
        tree=...)``.  Defaults to :func:`repro.core.gossip.gossip` over
        the accelerated spanning-tree construction (identical trees,
        scipy BFS kernels that release the GIL).
    planner_timeout:
        Per-request wall-clock budget (seconds) for one planner run.
        ``None`` (the default) disables the budget and runs the planner
        inline on the requesting thread, exactly as before.  With a
        budget set, builds run on a dedicated planner pool; a build
        that exceeds it is *abandoned* (Python threads cannot be
        killed — the stray build finishes in the background and still
        warms the cache for later requests) and the request falls back
        to ``fallback_algorithm`` if one is configured, else raises
        :class:`~repro.exceptions.PlanTimeoutError`.
    retries:
        How many times a *transient* planner failure (any exception not
        derived from :class:`~repro.exceptions.ReproError` — library
        errors are deterministic and retrying them is pointless) is
        retried, with exponential backoff starting at ``retry_backoff``
        seconds.
    fallback_algorithm:
        The cheaper algorithm whose plan is served — flagged in
        :attr:`ServiceStats.degraded` — when the primary planner times
        out or keeps failing transiently.  Degraded plans are cached
        under the *fallback* key only, so the primary is re-attempted
        on the next request and the service heals itself once the
        planner recovers.
    breaker_threshold:
        Enable a per-key circuit breaker
        (:class:`~repro.service.breaker.CircuitBreaker`): after this
        many *consecutive* primary-planner failures (timeouts or
        transient errors that survived the retry budget) the breaker
        opens and requests for that key stop touching the primary
        planner — they are served from the degraded fallback when one
        is configured, or fast-failed with a typed
        :class:`~repro.exceptions.CircuitOpenError` otherwise.  After
        ``breaker_cooldown`` seconds a single half-open probe is let
        through; success closes the breaker, failure re-opens it.
        ``None`` (the default) disables the breaker entirely.
    breaker_cooldown:
        Seconds an open breaker short-circuits requests before allowing
        the half-open probe (default 30).
    clock:
        Monotonic time source for breaker cooldowns (injectable for
        tests; defaults to :func:`time.monotonic`).
    lint:
        Static-analysis gate on cache admission.  ``"off"`` (default)
        admits every freshly-built plan; ``"warn"`` runs
        :func:`repro.lint.lint_schedule` (``model`` rules, plus the
        ``paper`` invariants for ConcurrentUpDown plans) and records
        findings in :attr:`ServiceStats.lint_errors` while still
        admitting the plan; ``"error"`` additionally *rejects* a plan
        with error-severity findings by raising
        :class:`~repro.exceptions.ScheduleLintError` — a dirty plan
        never enters the cache.  Lint rejections are deterministic
        library errors: they never trip the circuit breaker and never
        trigger the degraded fallback.

    Examples
    --------
    >>> from repro.service import GossipService
    >>> from repro.networks import topologies
    >>> service = GossipService()
    >>> g = topologies.grid_2d(4, 4)
    >>> service.plan(g).total_time        # cold: builds and caches
    20
    >>> service.plan(g).total_time        # warm: cache hit
    20
    >>> service.stats().misses
    1
    """

    def __init__(
        self,
        *,
        algorithm: str = "concurrent-updown",
        max_entries: int = 256,
        max_weight: Optional[int] = None,
        max_workers: Optional[int] = None,
        planner: Optional[Planner] = None,
        planner_timeout: Optional[float] = None,
        retries: int = 2,
        retry_backoff: float = 0.05,
        fallback_algorithm: Optional[str] = None,
        breaker_threshold: Optional[int] = None,
        breaker_cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        lint: str = "off",
    ) -> None:
        if planner_timeout is not None and planner_timeout <= 0:
            raise ReproError("planner_timeout must be positive (or None)")
        if lint not in ("off", "warn", "error"):
            raise ReproError(
                f"lint must be 'off', 'warn' or 'error', not {lint!r}"
            )
        if retries < 0:
            raise ReproError("retries must be >= 0")
        if breaker_threshold is not None and breaker_threshold < 1:
            raise ReproError("breaker_threshold must be >= 1 (or None)")
        if breaker_cooldown <= 0:
            raise ReproError("breaker_cooldown must be positive")
        self._algorithm = algorithm
        self._cache = PlanCache(max_entries=max_entries, max_weight=max_weight)
        self._stats = StatsRecorder()
        self._planner: Planner = planner if planner is not None else _fast_planner
        self._planner_timeout = planner_timeout
        self._retries = retries
        self._retry_backoff = retry_backoff
        self._fallback_algorithm = fallback_algorithm
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self._clock = clock
        self._lint = lint
        self._lock = threading.Lock()
        self._breakers: Dict[PlanKey, CircuitBreaker] = {}
        self._inflight: Dict[PlanKey, Future] = {}
        self._max_workers = max_workers or min(8, os.cpu_count() or 1)
        self._executor: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def plan(
        self,
        network: NetworkSpec,
        *,
        algorithm: Optional[str] = None,
        tree: Optional[Tree] = None,
    ) -> GossipPlan:
        """Serve a plan for ``network``, from cache when possible.

        ``network`` is any :func:`~repro.core.gossip.resolve_network`
        spec — a :class:`Graph`, a :class:`Tree`, or a family string
        like ``"grid:64"``.  Passing ``tree`` pins the spanning tree
        (the cache key then includes the tree's fingerprint, so plans
        for differently-maintained trees of the same graph never mix).

        Concurrent calls for the same key run the planner exactly once.
        """
        graph, tree = resolve_network(network, tree=tree)
        key = self._key(graph, tree, algorithm)
        start = perf_counter()

        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._stats.record_hit(perf_counter() - start)
                return cached
            future = self._inflight.get(key)
            owner = future is None
            if owner:
                future = Future()
                self._inflight[key] = future

        if not owner:
            plan = future.result()
            # Coalesced onto another thread's build: served without planning.
            self._stats.record_hit(perf_counter() - start)
            return plan

        try:
            plan, degraded = self._build_plan(graph, tree, key)
        except BaseException as exc:
            with self._lock:
                self._inflight.pop(key, None)
            future.set_exception(exc)
            raise
        build_seconds = perf_counter() - start
        with self._lock:
            # A degraded plan is the *fallback* algorithm's plan: caching
            # it under the primary key would serve it silently forever.
            # _build_plan already cached it under the fallback key.
            evicted = 0 if degraded else self._cache.put(key, plan)
            self._inflight.pop(key, None)
        self._stats.record_miss(build_seconds)
        self._stats.record_evictions(evicted)
        future.set_result(plan)
        return plan

    # ------------------------------------------------------------------
    # Execution: plan *and run* a request through a runtime
    # ------------------------------------------------------------------
    def execute(
        self,
        network: NetworkSpec,
        *,
        algorithm: Optional[str] = None,
        tree: Optional[Tree] = None,
        runtime: str = "simulator",
        chaos: Optional["NetChaos"] = None,
        config: Optional["RuntimeConfig"] = None,
        policy: Optional["RestartPolicy"] = None,
        time_scale: float = 1.0,
        fallback: bool = True,
    ) -> ExecutionOutcome:
        """Serve a plan for ``network`` and *run* it.

        Planning goes through :meth:`plan`, so the whole planning
        resilience policy (cache, coalescing, timeout, retries,
        breaker, degraded fallback) applies unchanged.  Execution then
        gets the same treatment, against its own per-key breaker:

        * ``runtime="simulator"`` replays the schedule on the offline
          simulator (deterministic, no sockets);
        * ``runtime="network"`` drives
          :func:`repro.runtime.run_gossip_network` (one asyncio UDP
          task per vertex in this interpreter);
        * ``runtime="processes"`` drives
          :func:`repro.runtime.run_gossip_processes` (one supervised OS
          process per vertex, real crash injection and rejoin).

        Execution failures are classified like planning failures:
        *transient* errors (not :class:`~repro.exceptions.ReproError`)
        are retried with the service's backoff; *availability* failures
        — a missed :class:`~repro.exceptions.RuntimeDeadlineError`
        deadline, a :class:`~repro.exceptions.SupervisorError`
        control-plane breakdown, or a transient error that survived the
        retry budget — count against the key's execution breaker and
        degrade (``fallback=True``) to the partial result the deadline
        carried, or to the offline simulator replay; with ``fallback=
        False`` they re-raise.  An *open* breaker skips the real
        runtime entirely: degraded simulator replay, or a typed
        :class:`~repro.exceptions.CircuitOpenError` fast-fail.  Other
        ``ReproError``\\ s indict the request, not the runtime — they
        re-raise and never trip the breaker.  Every outcome is counted
        in :class:`~repro.service.stats.ServiceStats`
        (``executions`` / ``exec_failures`` / ``exec_retries`` /
        ``exec_degraded`` / ``exec_fast_fails``).
        """
        if runtime not in _RUNTIMES:
            raise ReproError(
                f"runtime must be one of {_RUNTIMES}, not {runtime!r}"
            )
        if runtime == "simulator" and (
            chaos is not None or config is not None or policy is not None
        ):
            raise ReproError(
                "chaos/config/policy only apply to the 'network' and "
                "'processes' runtimes"
            )
        if runtime == "network" and policy is not None:
            raise ReproError("policy only applies to the 'processes' runtime")
        graph, tree = resolve_network(network, tree=tree)
        plan = self.plan(graph, algorithm=algorithm, tree=tree)
        if runtime == "simulator":
            result = plan.execute()
            self._stats.record_execution()
            return ExecutionOutcome(
                plan=plan, requested=runtime, runtime=runtime,
                degraded=False, result=result,
            )

        key = self._key(graph, tree, algorithm)
        exec_key = (key[0], key[1], f"{key[2]}@exec:{runtime}")
        breaker = self._breaker_for(exec_key)
        probing = False
        if breaker is not None:
            with self._lock:
                decision = breaker.acquire(self._clock())
                retry_after = breaker.retry_after(self._clock())
            if decision == "reject":
                return self._degrade_execution(
                    plan, runtime, failure=None, retry_after=retry_after,
                    fallback=fallback,
                )
            if decision == "probe":
                probing = True
                self._stats.record_probe()

        failure: BaseException
        attempt = 0
        while True:
            try:
                result = self._invoke_runtime(
                    plan, runtime, chaos=chaos, config=config,
                    policy=policy, time_scale=time_scale,
                )
            except (RuntimeDeadlineError, SupervisorError) as exc:
                failure = exc  # availability: the deadline burnt the budget
                break
            except ReproError:
                if probing:
                    with self._lock:
                        breaker.cancel_probe()
                raise  # deterministic request error: fallback cannot help
            except BaseException as exc:
                if attempt >= self._retries:
                    failure = exc
                    break
                self._stats.record_exec_retry()
                time.sleep(self._retry_backoff * (2**attempt))
                attempt += 1
            else:
                if breaker is not None:
                    with self._lock:
                        healed = breaker.record_success()
                    if healed:
                        self._stats.record_breaker_close()
                self._stats.record_execution()
                return ExecutionOutcome(
                    plan=plan, requested=runtime, runtime=runtime,
                    degraded=False, result=result,
                )

        self._stats.record_exec_failure()
        if breaker is not None:
            with self._lock:
                opened = breaker.record_failure(self._clock())
            if opened:
                self._stats.record_breaker_open()
        return self._degrade_execution(
            plan, runtime, failure=failure, retry_after=None,
            fallback=fallback,
        )

    def _degrade_execution(
        self,
        plan: GossipPlan,
        requested: str,
        *,
        failure: Optional[BaseException],
        retry_after: Optional[float],
        fallback: bool,
    ) -> ExecutionOutcome:
        """Serve a degraded execution result, or raise the typed error.

        ``failure`` is the runtime's availability error, or ``None``
        when an open breaker short-circuited the runtime without
        running it (``retry_after`` then carries the remaining
        cooldown).  The degraded answer is the partial result a missed
        deadline carried when there is one, else the offline simulator
        replay of the very plan the runtime would have executed.
        """
        if not fallback:
            if failure is not None:
                raise failure
            self._stats.record_exec_fast_fail()
            raise CircuitOpenError(
                f"execution breaker open for runtime {requested!r} "
                f"(retry in {retry_after:.3f}s) and degraded serving is "
                f"disabled",
                algorithm=plan.algorithm,
                retry_after=retry_after,
            )
        if isinstance(failure, RuntimeDeadlineError) and failure.partial is not None:
            self._stats.record_exec_degraded()
            self._stats.record_execution()
            return ExecutionOutcome(
                plan=plan, requested=requested, runtime=requested,
                degraded=True, result=failure.partial,  # type: ignore[arg-type]
            )
        result = plan.execute()
        self._stats.record_exec_degraded()
        self._stats.record_execution()
        return ExecutionOutcome(
            plan=plan, requested=requested, runtime="simulator",
            degraded=True, result=result,
        )

    def _invoke_runtime(
        self,
        plan: GossipPlan,
        runtime: str,
        *,
        chaos: Optional["NetChaos"],
        config: Optional["RuntimeConfig"],
        policy: Optional["RestartPolicy"],
        time_scale: float,
    ) -> "RuntimeResult":
        """One real-runtime run (imports deferred: no asyncio at import)."""
        if runtime == "network":
            from ..runtime.clock import RealClock, ScaledClock
            from ..runtime.runner import run_gossip_network

            clock = RealClock() if time_scale >= 1.0 else ScaledClock(time_scale)
            return run_gossip_network(
                plan, chaos=chaos, config=config, clock=clock
            )
        from ..runtime.supervisor import run_gossip_processes

        return run_gossip_processes(
            plan, chaos=chaos, config=config, policy=policy,
            time_scale=time_scale,
        )

    # ------------------------------------------------------------------
    # Hardened build path: timeout, bounded retry, degraded fallback
    # ------------------------------------------------------------------
    def _build_plan(
        self, graph: Graph, tree: Optional[Tree], key: PlanKey
    ) -> Tuple[GossipPlan, bool]:
        """Build the plan for ``key`` under the resilience policy.

        Returns ``(plan, degraded)`` where ``degraded`` marks a fallback
        algorithm's plan served in place of the primary.

        With a circuit breaker configured, the primary planner only runs
        while the key's breaker admits it: an open breaker skips the
        primary entirely (degraded fallback, or fast-fail with
        :class:`~repro.exceptions.CircuitOpenError`), and once per
        cooldown a single half-open probe re-tests the planner.
        Deterministic :class:`ReproError`\\ s never count against the
        breaker — they indict the input, not the planner.
        """
        algorithm = key[2]
        breaker = self._breaker_for(key)
        probing = False
        if breaker is not None:
            with self._lock:
                decision = breaker.acquire(self._clock())
                retry_after = breaker.retry_after(self._clock())
            if decision == "reject":
                self._stats.record_fast_fail()
                return self._serve_fallback(
                    graph, tree, key, failure=None, retry_after=retry_after
                )
            if decision == "probe":
                probing = True
                self._stats.record_probe()
        try:
            plan = self._build_with_retries(graph, tree, algorithm, key)
        except PlanTimeoutError as exc:
            primary_failure: BaseException = exc
        except ReproError:
            if probing:
                with self._lock:
                    breaker.cancel_probe()
            raise  # deterministic library error: fallback cannot help
        except BaseException as exc:
            primary_failure = exc  # transient failures survived retries
        else:
            if breaker is not None:
                with self._lock:
                    healed = breaker.record_success()
                if healed:
                    self._stats.record_breaker_close()
            return plan, False

        if breaker is not None:
            with self._lock:
                opened = breaker.record_failure(self._clock())
            if opened:
                self._stats.record_breaker_open()
        return self._serve_fallback(
            graph, tree, key, failure=primary_failure, retry_after=None
        )

    def _serve_fallback(
        self,
        graph: Graph,
        tree: Optional[Tree],
        key: PlanKey,
        *,
        failure: Optional[BaseException],
        retry_after: Optional[float],
    ) -> Tuple[GossipPlan, bool]:
        """Serve the degraded fallback plan, or raise the typed error.

        ``failure`` is the primary planner's exception, or ``None`` when
        an open breaker short-circuited the primary without running it
        (``retry_after`` then carries the breaker's remaining cooldown).
        """
        algorithm = key[2]
        fallback = self._fallback_algorithm
        if fallback is None or fallback == algorithm:
            if failure is not None:
                raise failure
            raise CircuitOpenError(
                f"circuit breaker open for algorithm {algorithm!r} "
                f"(retry in {retry_after:.3f}s) and no fallback_algorithm "
                f"is configured",
                algorithm=algorithm,
                retry_after=retry_after,
            )
        fallback_key = (key[0], key[1], fallback)
        with self._lock:
            cached = self._cache.get(fallback_key)
        if cached is None:
            try:
                cached = self._build_with_retries(graph, tree, fallback, fallback_key)
            except BaseException as exc:
                if failure is None:
                    raise CircuitOpenError(
                        f"circuit breaker open for algorithm {algorithm!r} "
                        f"and the degraded fallback ({fallback!r}) failed "
                        f"too: {exc!r}",
                        algorithm=algorithm,
                        retry_after=retry_after or 0.0,
                    ) from exc
                raise PlanTimeoutError(
                    f"primary planner ({algorithm!r}) failed "
                    f"({failure!r}) and the degraded fallback "
                    f"({fallback!r}) failed too: {exc!r}"
                ) from exc
            with self._lock:
                evicted = self._cache.put(fallback_key, cached)
            self._stats.record_evictions(evicted)
        self._stats.record_degraded()
        return cached, True

    def _breaker_for(self, key: PlanKey) -> Optional[CircuitBreaker]:
        """The key's breaker, created on first use (None when disabled)."""
        if self._breaker_threshold is None:
            return None
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    self._breaker_threshold, self._breaker_cooldown
                )
                self._breakers[key] = breaker
            return breaker

    def breaker_state(
        self,
        network: NetworkSpec,
        *,
        algorithm: Optional[str] = None,
        tree: Optional[Tree] = None,
    ) -> Optional[str]:
        """The breaker state for one network/algorithm key.

        Returns ``"closed"``, ``"open"`` or ``"half-open"``; ``None``
        when breakers are disabled or no request touched the key yet.
        """
        if self._breaker_threshold is None:
            return None
        graph, tree = resolve_network(network, tree=tree)
        key = self._key(graph, tree, algorithm)
        with self._lock:
            breaker = self._breakers.get(key)
            return None if breaker is None else breaker.state

    def _build_with_retries(
        self, graph: Graph, tree: Optional[Tree], algorithm: str, key: PlanKey
    ) -> GossipPlan:
        """One planner run, retried on transient (non-:class:`ReproError`)
        failures with exponential backoff."""
        attempt = 0
        while True:
            try:
                plan = self._invoke_planner(graph, tree, algorithm, key)
            except (ReproError, PlanTimeoutError):
                raise  # deterministic, or already accounted as a timeout
            except BaseException:
                if attempt >= self._retries:
                    raise
                self._stats.record_retry()
                time.sleep(self._retry_backoff * (2**attempt))
                attempt += 1
            else:
                self._lint_admit(plan)
                return plan

    def _lint_admit(self, plan: GossipPlan) -> None:
        """Statically certify a fresh plan before it may enter the cache.

        Runs the ``model`` rules (and the ``paper`` invariants for
        ConcurrentUpDown plans) — never the efficiency lints, which are
        advisory.  ``"warn"`` only counts findings; ``"error"`` raises
        :class:`~repro.exceptions.ScheduleLintError` so the plan is
        neither cached nor served.  The exception is a deterministic
        :class:`ReproError`: it indicts the planner's output, not its
        availability, so it bypasses retries, breakers and fallbacks.
        """
        if self._lint == "off":
            return
        tiers = [MODEL]
        if plan.algorithm == "concurrent-updown":
            tiers.append(PAPER)
        report = lint_schedule(
            plan.graph, plan.schedule, plan=plan, select=tiers
        )
        self._stats.record_lint(errors=len(report.errors))
        if report.errors and self._lint == "error":
            raise ScheduleLintError(
                f"static analysis rejected the {plan.algorithm!r} plan: "
                f"{report.errors[0].message}"
                + (f" (+{len(report.errors) - 1} more)"
                   if len(report.errors) > 1 else ""),
                diagnostics=report.errors,
            )

    def _invoke_planner(
        self, graph: Graph, tree: Optional[Tree], algorithm: str, key: PlanKey
    ) -> GossipPlan:
        """Run the planner, off-thread with a deadline when configured.

        Deadline builds each get a dedicated daemon thread rather than a
        shared pool: an abandoned (timed-out) build parked on a pool
        worker would starve the very fallback build meant to rescue the
        request.
        """
        if self._planner_timeout is None:
            return self._planner(graph, algorithm=algorithm, tree=tree)
        build: Future = Future()

        def _run() -> None:
            try:
                result = self._planner(graph, algorithm=algorithm, tree=tree)
            except BaseException as exc:  # delivered via the future
                build.set_exception(exc)
            else:
                build.set_result(result)

        threading.Thread(target=_run, name="gossip-planner", daemon=True).start()
        try:
            return build.result(timeout=self._planner_timeout)
        except FutureTimeoutError:
            self._stats.record_timeout()
            # The thread cannot be interrupted; let the stray build warm
            # the cache when (if) it eventually finishes.
            build.add_done_callback(lambda f: self._adopt_late_build(key, f))
            raise PlanTimeoutError(
                f"planner for algorithm {algorithm!r} exceeded "
                f"{self._planner_timeout}s"
            ) from None

    def _adopt_late_build(self, key: PlanKey, build: Future) -> None:
        """Cache a timed-out build that eventually completed anyway."""
        if build.cancelled() or build.exception() is not None:
            return
        with self._lock:
            evicted = self._cache.put(key, build.result())
        self._stats.record_evictions(evicted)

    def plan_many(
        self,
        networks: Iterable[NetworkSpec],
        *,
        algorithm: Optional[str] = None,
    ) -> List[GossipPlan]:
        """Serve a batch of plans concurrently (order-preserving).

        Duplicate specs in one batch coalesce into a single planning run
        thanks to the in-flight future table; distinct networks plan in
        parallel on the service's thread pool.
        """
        specs = list(networks)
        self._stats.record_batch()
        if not specs:
            return []
        if len(specs) == 1:
            return [self.plan(specs[0], algorithm=algorithm)]
        executor = self._ensure_executor()
        futures = [
            executor.submit(self.plan, spec, algorithm=algorithm) for spec in specs
        ]
        return [f.result() for f in futures]

    def maintain(
        self, graph: Graph, *, policy: str = "eager"
    ) -> "MaintainedNetwork":
        """Maintain ``graph``'s spanning tree against this service's cache.

        Returns a :class:`~repro.service.maintenance.MaintainedNetwork`
        whose ``add_edge`` / ``remove_edge`` patch or invalidate the
        affected cache entries instead of flushing the cache.
        """
        from ..networks.dynamic import TreeMaintainer
        from .maintenance import MaintainedNetwork

        return MaintainedNetwork(self, TreeMaintainer.create(graph, policy=policy))

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def invalidate(
        self,
        network: NetworkSpec,
        *,
        algorithm: Optional[str] = None,
        tree: Optional[Tree] = None,
    ) -> int:
        """Drop cached plans for one network.

        With ``algorithm`` given, drops just that entry; otherwise every
        algorithm's entry for the ``(graph, tree)`` pair.  Returns the
        number of entries removed.
        """
        graph, tree = resolve_network(network, tree=tree)
        ghash, tfp = graph.canonical_hash(), tree_fingerprint(tree)
        if algorithm is not None:
            count = int(self._cache.invalidate((ghash, tfp, algorithm)))
        else:
            count = self._cache.invalidate_where(
                lambda k, _p: k[0] == ghash and k[1] == tfp
            )
        self._stats.record_invalidations(count)
        return count

    def cache_clear(self) -> int:
        """Flush the cache entirely (counts as invalidations)."""
        count = self._cache.clear()
        self._stats.record_invalidations(count)
        return count

    @property
    def cache(self) -> PlanCache:
        """The underlying plan cache (shared, thread-safe)."""
        return self._cache

    def stats(self) -> ServiceStats:
        """Snapshot the service counters."""
        return self._stats.snapshot(
            entries=len(self._cache), weight=self._cache.weight
        )

    # ------------------------------------------------------------------
    # Maintenance hooks (used by MaintainedNetwork)
    # ------------------------------------------------------------------
    def _patch_entries(
        self, old_graph: Graph, new_graph: Graph, *, tree: Tree
    ) -> int:
        """Re-home cached plans onto a mutated graph whose tree survived.

        Every tree edge still exists in ``new_graph`` (the caller's
        maintainer guarantees it), and the paper's schedules only use
        tree edges — so the schedule stays valid verbatim and only the
        plan's ``graph`` field needs replacing.  Returns how many plans
        were patched across algorithms.
        """
        old_hash, tfp = old_graph.canonical_hash(), tree_fingerprint(tree)
        new_hash = new_graph.canonical_hash()
        donors = self._cache.items_where(
            lambda k, _p: k[0] == old_hash and k[1] == tfp
        )
        evicted = 0
        for (_, _, alg), plan in donors:
            patched = dataclasses.replace(plan, graph=new_graph)
            evicted += self._cache.put((new_hash, tfp, alg), patched)
        self._stats.record_patched(len(donors))
        self._stats.record_evictions(evicted)
        return len(donors)

    def _drop_graph_entries(self, graph: Graph) -> int:
        """Invalidate every cached plan for ``graph`` (all trees/algorithms)."""
        ghash = graph.canonical_hash()
        count = self._cache.invalidate_where(lambda k, _p: k[0] == ghash)
        self._stats.record_invalidations(count)
        return count

    def _note_rebuilds(self, count: int) -> None:
        self._stats.record_rebuilds(count)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="gossip-service",
                )
            return self._executor

    def close(self) -> None:
        """Shut the thread pool down (idempotent; cache stays usable).

        Abandoned deadline builds run on daemon threads and are not
        waited for — a stuck planner is exactly why timeouts exist.
        """
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "GossipService":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"GossipService(algorithm={self._algorithm!r}, cache={self._cache!r}, "
            f"workers={self._max_workers})"
        )

    # ------------------------------------------------------------------
    def _key(
        self, graph: Graph, tree: Optional[Tree], algorithm: Optional[str]
    ) -> PlanKey:
        alg = algorithm if algorithm is not None else self._algorithm
        if not isinstance(alg, str) or not alg:
            raise ReproError(f"bad algorithm name {alg!r}")
        return (graph.canonical_hash(), tree_fingerprint(tree), alg)
