"""Measurement workloads for the serving layer.

Shared by ``repro.cli bench`` / ``repro.cli serve-stats`` and
``benchmarks/bench_service_cache.py`` so the CLI, the benchmark suite,
and the tier-1 smoke test all exercise (and agree on) the same numbers:

* :func:`bench_plan_cache` — cold vs warm single-plan latency plus
  batch throughput on one topology;
* :func:`run_synthetic_workload` — a repeating multi-topology request
  stream against one service, returning its :class:`ServiceStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from time import perf_counter
from typing import Optional, Sequence

from ..core.gossip import resolve_network
from ..networks.graph import Graph
from .service import GossipService
from .stats import ServiceStats

__all__ = ["CacheBenchResult", "bench_plan_cache", "run_synthetic_workload"]


@dataclass(frozen=True)
class CacheBenchResult:
    """Cold/warm serving contrast for one network.

    Attributes
    ----------
    topology / n / m:
        The measured network.
    cold_ms:
        Median cold-start latency: ``plan()`` on a fresh service
        (includes tree construction, labelling, and scheduling).
    warm_ms:
        Median warm-hit latency: ``plan()`` repeated on the same service.
    speedup:
        ``cold_ms / warm_ms`` — the acceptance gate is >= 10x.
    batch_size / batch_unique:
        Shape of the measured ``plan_many`` batch (duplicates coalesce).
    batch_cold_s / batch_warm_s:
        Wall time of the batch cold (empty cache) and warm (fully
        cached).
    batch_warm_throughput:
        Warm plans served per second.
    """

    topology: str
    n: int
    m: int
    cold_ms: float
    warm_ms: float
    speedup: float
    batch_size: int
    batch_unique: int
    batch_cold_s: float
    batch_warm_s: float
    batch_warm_throughput: float

    def format(self) -> str:
        """Human-readable report for the CLI."""
        return "\n".join(
            [
                f"network        : {self.topology} (n={self.n}, m={self.m})",
                f"cold plan      : {self.cold_ms:9.3f} ms   (tree + labels + schedule)",
                f"warm plan      : {self.warm_ms:9.3f} ms   (cache hit)",
                f"speedup        : {self.speedup:9.1f} x",
                f"batch          : {self.batch_size} requests over "
                f"{self.batch_unique} unique networks",
                f"batch cold     : {self.batch_cold_s * 1e3:9.3f} ms",
                f"batch warm     : {self.batch_warm_s * 1e3:9.3f} ms   "
                f"({self.batch_warm_throughput:,.0f} plans/s)",
            ]
        )

    def check(self, *, min_speedup: float = 10.0) -> None:
        """Assert the acceptance gate (raises ``AssertionError``)."""
        assert self.speedup >= min_speedup, (
            f"warm hit is only {self.speedup:.1f}x faster than cold planning "
            f"(cold {self.cold_ms:.3f} ms, warm {self.warm_ms:.3f} ms); "
            f"need >= {min_speedup:.0f}x"
        )


def bench_plan_cache(
    network: object = "grid:256",
    *,
    algorithm: str = "concurrent-updown",
    cold_rounds: int = 3,
    warm_rounds: int = 200,
    batch_size: int = 32,
    batch_unique: int = 8,
    max_workers: Optional[int] = None,
) -> CacheBenchResult:
    """Measure cold vs warm plan latency and batch throughput.

    ``network`` is any :func:`~repro.core.gossip.resolve_network` spec;
    the default ``"grid:256"`` resolves to ``grid_2d(16, 16)`` — the
    acceptance-criteria network.  Cold latency is the median over
    ``cold_rounds`` *fresh* services; warm latency the median over
    ``warm_rounds`` repeat requests.  The batch phase requests
    ``batch_size`` plans spread over ``batch_unique`` perturbed variants
    of the network (distinct fingerprints), cold then warm.
    """
    graph, _ = resolve_network(network)

    cold_samples = []
    for _ in range(max(1, cold_rounds)):
        with GossipService(algorithm=algorithm) as service:
            t0 = perf_counter()
            service.plan(graph)
            cold_samples.append(perf_counter() - t0)

    with GossipService(algorithm=algorithm, max_workers=max_workers) as service:
        service.plan(graph)  # prime
        warm_samples = []
        for _ in range(max(1, warm_rounds)):
            t0 = perf_counter()
            service.plan(graph)
            warm_samples.append(perf_counter() - t0)

    cold_ms = median(cold_samples) * 1e3
    warm_ms = median(warm_samples) * 1e3

    variants = _perturbed_variants(graph, count=max(1, batch_unique))
    requests = [variants[i % len(variants)] for i in range(max(1, batch_size))]
    with GossipService(algorithm=algorithm, max_workers=max_workers) as batch_service:
        t0 = perf_counter()
        batch_service.plan_many(requests)
        batch_cold_s = perf_counter() - t0
        t0 = perf_counter()
        batch_service.plan_many(requests)
        batch_warm_s = perf_counter() - t0

    return CacheBenchResult(
        topology=graph.name or "graph",
        n=graph.n,
        m=graph.m,
        cold_ms=cold_ms,
        warm_ms=warm_ms,
        speedup=cold_ms / warm_ms if warm_ms > 0 else float("inf"),
        batch_size=len(requests),
        batch_unique=len(variants),
        batch_cold_s=batch_cold_s,
        batch_warm_s=batch_warm_s,
        batch_warm_throughput=(
            len(requests) / batch_warm_s if batch_warm_s > 0 else float("inf")
        ),
    )


def _perturbed_variants(graph: Graph, *, count: int) -> Sequence[Graph]:
    """``count`` distinct connected variants of ``graph`` (chord tweaks).

    Variant 0 is the graph itself; variant ``i`` adds a chord between
    vertex 0 and a far vertex (skipping existing edges), so each variant
    has a distinct canonical hash while staying connected.
    """
    variants = [graph]
    candidates = [v for v in range(graph.n - 1, 0, -1) if not graph.has_edge(0, v)]
    for v in candidates:
        if len(variants) >= count:
            break
        variants.append(graph.add_edges([(0, v)], name=f"{graph.name}+chord{v}"))
    return variants


def run_synthetic_workload(
    service: Optional[GossipService] = None,
    *,
    families: Sequence[str] = ("grid", "star", "path", "hypercube"),
    sizes: Sequence[int] = (16, 64),
    requests: int = 200,
    algorithm: Optional[str] = None,
) -> ServiceStats:
    """Replay a repeating request stream and return the service stats.

    The stream cycles over ``families x sizes`` specs, so after the
    first ``len(families) * len(sizes)`` requests everything is warm —
    the steady-state hit rate a long-running deployment would see.

    A caller-supplied ``service`` is left open (its stats keep
    accumulating); the internally-created default is closed before the
    stats are returned — nobody else holds a handle to it.
    """
    owned = service is None
    service = service if service is not None else GossipService()
    try:
        specs = [f"{family}:{size}" for family in families for size in sizes]
        for i in range(max(0, requests)):
            service.plan(specs[i % len(specs)], algorithm=algorithm)
        return service.stats()
    finally:
        if owned:
            service.close()
