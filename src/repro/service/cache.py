"""Thread-safe LRU plan cache keyed by content fingerprints.

The cache maps :data:`PlanKey` triples — ``(graph fingerprint, tree
fingerprint, algorithm)`` — to :class:`~repro.core.gossip.GossipPlan`
objects.  Keys are *content-addressed*: the graph part is
:meth:`Graph.canonical_hash` (equal labeled graphs collide on purpose),
and the tree part pins plans that were built for an explicitly
maintained spanning tree (empty string for the canonical minimum-depth
tree, which is a pure function of the graph).

Two bounds keep a long-lived service from growing without limit:

* ``max_entries`` — LRU entry count;
* ``max_weight`` — summed plan weight in *bytes* of the canonical
  schedule arrays (:attr:`ArraySchedule.nbytes
  <repro.core.schedule.ArraySchedule.nbytes>`: the flat columns plus
  the destination-mask matrix, whether or not the mask has
  materialised).  ``None`` disables the weight bound.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Callable, List, Optional, Tuple

from ..core.gossip import GossipPlan
from ..exceptions import ReproError
from ..tree.tree import Tree

__all__ = ["PlanCache", "PlanKey", "tree_fingerprint", "plan_weight"]

#: Cache key: (graph canonical hash, tree fingerprint or "", algorithm name).
PlanKey = Tuple[str, str, str]


def tree_fingerprint(tree: Optional[Tree]) -> str:
    """Stable content fingerprint of a rooted ordered tree ("" for None).

    Covers the root, the parent array, and the per-vertex child order —
    everything that determines the DFS labelling and therefore the
    schedule.  Like :meth:`Graph.canonical_hash`, this is stable across
    processes (no salted ``hash()``).
    """
    if tree is None:
        return ""
    h = hashlib.sha256()
    h.update(tree.root.to_bytes(8, "little"))
    for p in tree.parents():
        h.update(p.to_bytes(8, "little", signed=True))
    for v in tree.vertices():
        for c in tree.children(v):
            h.update(c.to_bytes(8, "little"))
        h.update(b"/")
    return h.hexdigest()


def plan_weight(plan: GossipPlan) -> int:
    """Cache weight of one plan: its canonical schedule arrays' bytes.

    ``plan.arrays().nbytes`` is an analytic property of the schedule
    shape (it charges the destination-mask matrix whether or not it has
    materialised), so a plan's weight never changes across its cache
    lifetime — the invariant the accounting in :meth:`PlanCache.put`
    relies on.
    """
    return plan.arrays().nbytes


class PlanCache:
    """A bounded, thread-safe LRU cache of :class:`GossipPlan` objects.

    All operations take the internal lock, so the cache may be shared
    freely between threads; compound read-modify-write sequences that
    must be atomic across *several* calls should hold :attr:`lock`.
    """

    def __init__(self, max_entries: int = 256, max_weight: Optional[int] = None) -> None:
        if max_entries < 1:
            raise ReproError(f"cache needs max_entries >= 1, got {max_entries}")
        if max_weight is not None and max_weight < 1:
            raise ReproError(f"cache needs max_weight >= 1, got {max_weight}")
        self.lock = threading.RLock()
        self._max_entries = max_entries
        self._max_weight = max_weight
        self._entries: "OrderedDict[PlanKey, GossipPlan]" = OrderedDict()
        self._weight = 0

    # ------------------------------------------------------------------
    @property
    def max_entries(self) -> int:
        """LRU capacity in entries."""
        return self._max_entries

    @property
    def max_weight(self) -> Optional[int]:
        """Total weight bound (``None`` = unbounded)."""
        return self._max_weight

    @property
    def weight(self) -> int:
        """Summed weight of the cached plans."""
        with self.lock:
            return self._weight

    def __len__(self) -> int:
        with self.lock:
            return len(self._entries)

    def __contains__(self, key: PlanKey) -> bool:
        with self.lock:
            return key in self._entries

    def keys(self) -> List[PlanKey]:
        """Cached keys, least- to most-recently used."""
        with self.lock:
            return list(self._entries)

    # ------------------------------------------------------------------
    def get(self, key: PlanKey) -> Optional[GossipPlan]:
        """Look up ``key``, refreshing its LRU position on a hit."""
        with self.lock:
            plan = self._entries.get(key)
            if plan is not None:
                self._entries.move_to_end(key)
            return plan

    def put(self, key: PlanKey, plan: GossipPlan) -> int:
        """Insert (or refresh) ``key``; returns how many entries were evicted.

        A plan heavier than ``max_weight`` on its own is still admitted
        (the bound then holds every *other* entry out), so oversized
        requests degrade to cache-bypass rather than erroring.
        """
        evicted = 0
        w = plan_weight(plan)
        with self.lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._weight -= plan_weight(old)
            self._entries[key] = plan
            self._weight += w
            while len(self._entries) > self._max_entries or (
                self._max_weight is not None
                and self._weight > self._max_weight
                and len(self._entries) > 1
            ):
                _, victim = self._entries.popitem(last=False)
                self._weight -= plan_weight(victim)
                evicted += 1
        return evicted

    # ------------------------------------------------------------------
    def invalidate(self, key: PlanKey) -> bool:
        """Drop one entry; returns whether it existed."""
        with self.lock:
            plan = self._entries.pop(key, None)
            if plan is None:
                return False
            self._weight -= plan_weight(plan)
            return True

    def invalidate_where(
        self, predicate: Callable[[PlanKey, GossipPlan], bool]
    ) -> int:
        """Drop every entry matching ``predicate``; returns the count."""
        with self.lock:
            doomed = [k for k, p in self._entries.items() if predicate(k, p)]
            for k in doomed:
                self._weight -= plan_weight(self._entries.pop(k))
            return len(doomed)

    def items_where(
        self, predicate: Callable[[PlanKey, GossipPlan], bool]
    ) -> List[Tuple[PlanKey, GossipPlan]]:
        """Snapshot of entries matching ``predicate`` (no LRU refresh)."""
        with self.lock:
            return [(k, p) for k, p in self._entries.items() if predicate(k, p)]

    def clear(self) -> int:
        """Drop everything; returns how many entries were held."""
        with self.lock:
            n = len(self._entries)
            self._entries.clear()
            self._weight = 0
            return n

    def __repr__(self) -> str:
        with self.lock:
            return (
                f"PlanCache(entries={len(self._entries)}/{self._max_entries}, "
                f"weight={self._weight}"
                + (f"/{self._max_weight}" if self._max_weight is not None else "")
                + ")"
            )
