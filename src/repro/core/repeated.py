"""Repeated (pipelined) gossiping on a fixed tree.

Section 4: *"In many applications, one has to execute the gossiping
algorithms a large number of times, so that is why it is important to
perform gossiping in a tree efficiently.  The construction of the tree
is performed only when there is a change in the network."*

This module takes the amortisation one step further: when ``k`` gossip
operations run back to back (each processor contributes one fresh
message per *instance* — think iterative solvers doing one all-gather
per iteration), the instances can be **pipelined**: instance ``q`` starts
``q * offset`` rounds after instance 0 rather than waiting for it to
finish.  The minimal safe offset is found by calendar search: the
smallest shift at which instance 1's sends and receives collide with
instance 0's nowhere (then, because every instance is an identical
time-shifted copy, *all* pairs are conflict-free at multiples of that
offset — verified by construction when the combined schedule is built).

Message ids: instance ``q``'s message with DFS label ``m`` becomes
``q * n + m``.

Capacity says the offset cannot beat ``n - 1`` (every processor must
receive ``n - 1`` fresh messages per instance, one per round), so at most
``r + 1`` rounds per instance could ever be saved.  The measured finding
(``benchmarks/bench_repeated_gossip.py``) is that ConcurrentUpDown leaves
almost none of even that slack: a level-``k`` vertex's receive calendar
is the full interval ``[1, n + k]`` minus just two holes, so a shifted
copy collides at every offset below ≈ ``n + r`` — the schedules are
*receive-saturated*.  Consequence: the paper's amortisation advice
("construct the tree only when the network changes") is about the O(mn)
tree construction, not about overlapping successive gossips; steady-state
cost per gossip stays ``n + r`` (the star, whose leaves sit at level 1,
is the one family that squeezes out a round).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Set, Tuple

if TYPE_CHECKING:  # the engine is only imported lazily, inside execute()
    from ..simulator.engine import ExecutionResult

from ..exceptions import ReproError, ScheduleConflictError
from ..tree.labeling import LabeledTree
from .concurrent_updown import concurrent_updown
from .schedule import Schedule, ScheduleBuilder

__all__ = ["RepeatedGossipPlan", "minimal_pipeline_offset", "repeated_gossip"]


def _calendars(schedule: Schedule) -> Tuple[Dict[int, Set[int]], Dict[int, Set[int]]]:
    """Per-vertex send-time and receive-time sets of a schedule."""
    sends: Dict[int, Set[int]] = {}
    recvs: Dict[int, Set[int]] = {}
    for t, rnd in enumerate(schedule):
        for tx in rnd:
            sends.setdefault(tx.sender, set()).add(t)
            for d in tx.destinations:
                recvs.setdefault(d, set()).add(t + 1)
    return sends, recvs


def minimal_pipeline_offset(schedule: Schedule) -> int:
    """Smallest shift at which a time-shifted copy never collides.

    Checks sender and receiver calendars of the schedule against its own
    copy shifted by each candidate offset, starting from the capacity
    floor (no processor may receive two messages in one round, so the
    offset is at least the maximum per-vertex receive count).
    """
    sends, recvs = _calendars(schedule)
    if not sends:
        return 0
    floor = max(len(times) for times in recvs.values()) if recvs else 1
    floor = max(floor, 1)
    horizon = schedule.total_time

    def clashes(delta: int) -> bool:
        return any(
            (t + delta) in times for times in sends.values() for t in times
        ) or any(
            (t + delta) in times for times in recvs.values() for t in times
        )

    for offset in range(floor, horizon + 1):
        # Instances q < q' are shifted by (q' - q) * offset; only shifts
        # below the horizon can ever overlap, so check those multiples.
        deltas = range(offset, horizon + 1, offset)
        if not any(clashes(delta) for delta in deltas):
            return offset
    return horizon  # sequential fallback: no overlap possible


@dataclass(frozen=True)
class RepeatedGossipPlan:
    """``k`` pipelined gossip instances on one labelled tree.

    Attributes
    ----------
    labeled:
        The communication tree (fixed across instances, per Section 4).
    instances:
        Number of gossip operations ``k``.
    offset:
        Rounds between consecutive instance starts.
    schedule:
        The combined schedule; message ``q * n + m`` is instance ``q``'s
        message with DFS label ``m``.
    """

    labeled: LabeledTree
    instances: int
    offset: int
    schedule: Schedule

    @property
    def total_time(self) -> int:
        """Makespan of all ``k`` instances."""
        return self.schedule.total_time

    @property
    def sequential_time(self) -> int:
        """What running the instances back to back would cost."""
        single = concurrent_updown(self.labeled).total_time
        return self.instances * single

    @property
    def amortised_time(self) -> float:
        """Average rounds per gossip instance in steady state."""
        return self.total_time / self.instances

    def execute(self) -> "ExecutionResult":
        """Validate on the simulator with per-instance message spaces."""
        from ..networks.builders import tree_to_graph
        from ..simulator.engine import execute_schedule

        n = self.labeled.n
        holds = [0] * n
        for v in range(n):
            for q in range(self.instances):
                holds[v] |= 1 << (q * n + self.labeled.label_of(v))
        return execute_schedule(
            tree_to_graph(self.labeled.tree),
            self.schedule,
            initial_holds=holds,
            n_messages=self.instances * n,
            require_complete=True,
        )


def repeated_gossip(
    labeled: LabeledTree, instances: int, offset: int | None = None
) -> RepeatedGossipPlan:
    """Pipeline ``instances`` ConcurrentUpDown gossips on one tree.

    ``offset`` defaults to :func:`minimal_pipeline_offset` of the single
    schedule.  Raises :class:`ReproError` when a supplied offset causes a
    collision (the builder proves safety as a side effect of merging).
    """
    if instances < 1:
        raise ReproError("need at least one gossip instance")
    single = concurrent_updown(labeled)
    if offset is None:
        offset = minimal_pipeline_offset(single)
    n = labeled.n
    builder = ScheduleBuilder()
    try:
        for q in range(instances):
            base = q * offset
            for t, rnd in enumerate(single):
                for tx in rnd:
                    builder.send(
                        base + t, tx.sender, q * n + tx.message, tx.destinations
                    )
        schedule = builder.build(name=f"ConcurrentUpDown-x{instances}")
    except ScheduleConflictError as exc:
        raise ReproError(
            f"offset {offset} is unsafe for pipelined gossip: {exc}"
        ) from exc
    return RepeatedGossipPlan(
        labeled=labeled, instances=instances, offset=offset, schedule=schedule
    )
