"""The online gossiping protocol (paper Section 4).

*"Our algorithms can be easily adapted for the online case.  The only
global information that they need is the value of i, j, and k."*

:class:`OnlineProcessor` is a per-processor state machine that decides
its own transmissions using only local knowledge:

* its block ``(i, j, k)``, whether it is its parent's first child, the
  total processor count ``n``, its parent's id, and its children's ids
  with their subtree intervals (a parent learns its children's ``(i, j)``
  while the labelling is disseminated);
* the messages it has received so far, with their arrival times and the
  link they arrived on.

Each round the driver (:func:`run_online_gossip`) asks every processor
what it sends; no processor ever inspects another's state.  The emitted
transmissions are exactly the (U3)/(U4)/(D2)/(D3) events of
ConcurrentUpDown, so the online execution reproduces the offline
schedule verbatim — asserted by :func:`online_matches_offline` and the
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import SimulationError
from ..tree.labeling import LabeledTree
from .schedule import Round, Schedule, Transmission

__all__ = ["OnlineProcessor", "run_online_gossip", "online_matches_offline"]


@dataclass(frozen=True)
class _ChildInfo:
    """What a parent knows about one child: its id and subtree interval."""

    vertex: int
    i: int
    j: int


class OnlineProcessor:
    """One processor executing ConcurrentUpDown from local knowledge only."""

    def __init__(
        self,
        vertex: int,
        n: int,
        i: int,
        j: int,
        k: int,
        parent: Optional[int],
        is_first_child: bool,
        children: Sequence[_ChildInfo],
    ) -> None:
        self.vertex = vertex
        self.n = n
        self.i = i
        self.j = j
        self.k = k
        self.parent = parent
        self.is_first_child = is_first_child
        self.children = list(children)
        self.w = 1 if is_first_child else 0
        # messages currently held: own message plus everything received
        self._held: Dict[int, int] = {i: 0}  # message -> arrival time
        # o-messages from the parent held back by the (D2) delay rule
        self._delayed: List[int] = []
        # o-messages to relay this round (arrival time == now)
        self._fresh_from_parent: Optional[int] = None
        # links this processor actually has (deliveries elsewhere are bogus)
        self._links = frozenset(
            c.vertex for c in self.children
        ) | (frozenset() if parent is None else frozenset({parent}))
        # exact (time, sender, message) triples already delivered
        self._delivered: Set[Tuple[int, int, int]] = set()

    # ------------------------------------------------------------------
    def receive(self, time: int, sender: int, message: int) -> None:
        """Deliver ``message`` (sent by ``sender`` in round ``time - 1``).

        Validates the delivery against the communication model before
        touching any state — a datagram-fed driver must not be able to
        corrupt the protocol with malformed input:

        * ``sender`` must be a tree neighbour (messages only travel on
          this processor's own links);
        * ``message`` must be a DFS label in ``[0, n)``;
        * ``time`` must be a possible arrival round — at least 1 (round-0
          sends land at 1) and within the ``2n`` horizon that bounds
          every tree schedule (Theorem 1's ``n + height < 2n``);
        * the exact ``(time, sender, message)`` triple must be new — the
          same physical delivery handed over twice means the driver's
          dedup is broken.  (A *different* delivery of an already-held
          message stays legal and is ignored, as the model prescribes.)

        Violations raise :class:`~repro.exceptions.SimulationError`
        naming the processor and the offending delivery.
        """
        locus = (
            f"processor {self.vertex}: delivery of message {message} "
            f"from {sender} at time {time}"
        )
        if sender not in self._links:
            raise SimulationError(
                f"{locus} arrived on an unknown link (neighbours: "
                f"{sorted(self._links)})"
            )
        if not 0 <= message < self.n:
            raise SimulationError(
                f"{locus} carries an out-of-range message id (n={self.n})"
            )
        if not 1 <= time <= 2 * self.n:
            raise SimulationError(
                f"{locus} has an impossible arrival round "
                f"(valid range: 1..{2 * self.n})"
            )
        triple = (time, sender, message)
        if triple in self._delivered:
            raise SimulationError(f"{locus} was already delivered (duplicate)")
        self._delivered.add(triple)
        if message in self._held:
            return
        self._held[message] = time
        if self.parent is not None and sender == self.parent:
            is_o_message = message < self.i or message > self.j
            if is_o_message:
                if time in (self.i - self.k, self.i - self.k + 1):
                    self._delayed.append(message)
                else:
                    self._fresh_from_parent = message

    def _owner_child(self, message: int) -> Optional[int]:
        for child in self.children:
            if child.i <= message <= child.j:
                return child.vertex
        return None

    def transmissions(self, time: int) -> List[Transmission]:
        """Everything this processor sends in round ``time`` (0 or 1 items).

        Computes the (U3)/(U4) upward event and the (D2)/(D3) downward
        event for this round and fuses them when they carry the same
        message (the only overlap, per Theorem 1).
        """
        i, j, k = self.i, self.j, self.k
        up_message: Optional[int] = None
        if self.parent is not None:
            if time == 0 and self.is_first_child and self.w:
                up_message = i  # (U3): the lip-message
            else:
                m = time + k  # (U4): message m goes up at time m - k
                if i + self.w <= m <= j:
                    up_message = m

        down_message: Optional[int] = None
        down_dests: List[int] = []
        if self.children:
            # (D3): body message m at time m - k; s-message special cases.
            m = time + k
            if i < m <= j:
                down_message = m
                owner = self._owner_child(m)
                down_dests = [c.vertex for c in self.children if c.vertex != owner]
            s_time = (j - k + 1) if i == k else (i - k)
            if time == s_time:
                down_message = i
                down_dests = [c.vertex for c in self.children]
            # (D2): relay the o-message that arrived this round, or flush
            # the delayed ones at j - k + 1 / j - k + 2.
            if self._fresh_from_parent is not None:
                if down_message is not None:
                    raise SimulationError(
                        f"processor {self.vertex}: (D2) relay of "
                        f"{self._fresh_from_parent} collides with (D3) at {time}"
                    )
                down_message = self._fresh_from_parent
                down_dests = [c.vertex for c in self.children]
            elif self._delayed and time in (j - k + 1, j - k + 2):
                if down_message is None:
                    down_message = self._delayed.pop(0)
                    down_dests = [c.vertex for c in self.children]
        self._fresh_from_parent = None

        txs: List[Transmission] = []
        if up_message is not None and up_message == down_message:
            if up_message not in self._held:
                raise SimulationError(
                    f"processor {self.vertex} must send {up_message} at "
                    f"{time} but has not received it"
                )
            dests = frozenset([self.parent, *down_dests])
            txs.append(
                Transmission(sender=self.vertex, message=up_message, destinations=dests)
            )
            return txs
        if up_message is not None:
            if up_message not in self._held:
                raise SimulationError(
                    f"processor {self.vertex} must send {up_message} up at "
                    f"{time} but has not received it"
                )
            txs.append(
                Transmission(
                    sender=self.vertex,
                    message=up_message,
                    destinations=frozenset({self.parent}),
                )
            )
        if down_message is not None and down_dests:
            if down_message not in self._held:
                raise SimulationError(
                    f"processor {self.vertex} must send {down_message} down "
                    f"at {time} but has not received it"
                )
            txs.append(
                Transmission(
                    sender=self.vertex,
                    message=down_message,
                    destinations=frozenset(down_dests),
                )
            )
        if len(txs) > 1:
            raise SimulationError(
                f"processor {self.vertex} would send two different messages "
                f"at time {time}: {txs}"
            )
        return txs

    @property
    def held_messages(self) -> List[int]:
        """Messages held so far, sorted."""
        return sorted(self._held)

    def is_complete(self) -> bool:
        """Whether all ``n`` messages have been collected."""
        return len(self._held) == self.n


def build_processors(labeled: LabeledTree) -> List[OnlineProcessor]:
    """Instantiate one :class:`OnlineProcessor` per vertex.

    This models the dissemination phase: each processor is told its own
    ``(i, j, k)``, its parent, whether it is a first child, and its
    children's intervals — nothing else.
    """
    tree = labeled.tree
    procs: List[OnlineProcessor] = []
    for v in range(labeled.n):
        block = labeled.block(v)
        children = [
            _ChildInfo(
                vertex=c,
                i=labeled.block(c).i,
                j=labeled.block(c).j,
            )
            for c in tree.children(v)
        ]
        procs.append(
            OnlineProcessor(
                vertex=v,
                n=labeled.n,
                i=block.i,
                j=block.j,
                k=block.k,
                parent=None if tree.is_root(v) else tree.parent(v),
                is_first_child=block.is_first_child,
                children=children,
            )
        )
    return procs


def run_online_gossip(labeled: LabeledTree, max_rounds: Optional[int] = None) -> Schedule:
    """Drive the online protocol round by round until everyone is done.

    Returns the schedule the processors collectively emitted; it equals
    the offline ConcurrentUpDown schedule.
    """
    procs = build_processors(labeled)
    horizon = labeled.n + labeled.height if max_rounds is None else max_rounds
    rounds: List[Round] = []
    pending: List[Tuple[int, int, int]] = []  # (receiver, sender, message)
    for t in range(horizon + 1):
        for receiver, sender, message in pending:
            procs[receiver].receive(t, sender, message)
        pending = []
        if all(p.is_complete() for p in procs):
            break
        txs: List[Transmission] = []
        for p in procs:
            for tx in p.transmissions(t):
                txs.append(tx)
                for d in tx.destinations:
                    pending.append((d, tx.sender, tx.message))
        rounds.append(Round(txs))
    else:
        raise SimulationError(
            f"online gossip did not finish within {horizon} rounds"
        )
    return Schedule(rounds, name="ConcurrentUpDown-online")


def online_matches_offline(labeled: LabeledTree) -> bool:
    """Whether the online emission equals the offline schedule exactly."""
    from .concurrent_updown import concurrent_updown

    return run_online_gossip(labeled).rounds == concurrent_updown(labeled).rounds
