"""Randomized epidemic gossip — push, pull, and push-pull baselines.

The paper's rivals (Simple, UpDown, telephone) are deterministic tree
schedules; this module adds the other half of the gossip literature as
first-class registry algorithms: seeded random *push* (every round each
processor forwards a random held rumour to random neighbours), *pull*
(each processor asks a random neighbour for a rumour it lacks) and
*push-pull* fanout gossip, in the style of the demand/anti-entropy
protocols the related-work snippets model (DistributedExercisesAAU,
PeerConnect push-gossip).

Everything is expressed in the paper's round-based multicasting model so
the existing engines execute the output unchanged:

* one send per processor per round, one receive per processor per round
  — colliding pushes are *resolved at generation time* (a seeded random
  intent order; losers are simply not scheduled, the rumor-mongering
  analogue of a busy callee);
* a multicast may target up to ``fanout`` neighbours at once (the
  multicasting model's advantage over telephone gossip);
* deliveries land one round after sending (receive-before-send).

Determinism is the load-bearing property, exactly as in
:mod:`repro.simulator.lossy`: every coin flip flows through the
splitmix64 streams of :mod:`repro.core.rng`, keyed by
``(seed, tag, round, vertex)``, so a run is a pure function of its seed
(``scripts/check_conventions.py`` rule 6 bans any other randomness
source here).

Two execution styles:

* :func:`epidemic_schedule` — generate the *fault-free* transcript as a
  plain :class:`~repro.core.schedule.Schedule`; this is what the
  registered algorithms (``epidemic-push``, ``epidemic-pull``,
  ``epidemic-push-pull``) return, so ``gossip(g, algorithm=...)``,
  the simulator, the linter and the lossy/chaos engines all consume
  epidemic output like any deterministic schedule.
* :func:`run_epidemic` — the *online* protocol under a seeded
  :class:`~repro.simulator.lossy.FaultModel`: round decisions read the
  actual (faulty) possession state, which is where epidemic redundancy
  earns its keep.  The returned transcript replayed through
  :func:`~repro.simulator.lossy.execute_with_faults` under the same
  model lands in the identical final state (property-tested) — the
  online run and the lossy engine agree on what happened.

TTL semantics: ``ttl=k`` keeps a rumour *hot* (eligible for pushing)
for ``k`` rounds after its first arrival, after which the vertex stops
volunteering it — the classic rumour-death knob.  Pull responses ignore
TTL (anti-entropy repairs cold rumours); ``ttl=None`` (default) never
cools, which is what the completeness properties rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TypeVar

from ..exceptions import ReproError
from ..networks.builders import tree_to_graph
from ..networks.graph import Graph
from ..simulator.lossy import FaultModel
from ..tree.labeling import LabeledTree
from .gossip import register_algorithm
from .rng import SplitMix64, keyed_u64
from .schedule import Round, Schedule, Transmission

__all__ = [
    "EpidemicResult",
    "EPIDEMIC_VARIANTS",
    "run_epidemic",
    "epidemic_schedule",
    "default_epidemic_horizon",
]

_P = TypeVar("_P")

#: The supported protocol variants.
EPIDEMIC_VARIANTS = ("push", "pull", "push-pull")

#: Seed the registry entries use (``gossip(g, algorithm="epidemic-*")``
#: must be deterministic with no way to pass a seed through the
#: registry signature; use :func:`epidemic_schedule` for seeded runs).
REGISTRY_SEED = 7

# Domain-separation tags (disjoint from the lossy-model tags so one
# seed can drive both the protocol and its fault injection).
_TAG_PUSH_MSG = 0xE41
_TAG_PUSH_DEST = 0xE42
_TAG_PULL_PEER = 0xE43
_TAG_PULL_SERVE = 0xE44
_TAG_ORDER = 0xE45


def default_epidemic_horizon(n: int) -> int:
    """Default round budget: generous w.r.t. the O(n²) completion scale.

    Pull and push-pull complete in O(n) rounds, but *push* with uniform
    random rumour selection degenerates to an O(n²) random walk on
    path-like networks (a held rumour is re-pushed with probability
    ``1/|holds|`` per round), with a heavy tail on top — measured worst
    case ≈ 7·n² rounds on ``caterpillar:16``.  The cap is a comfortable
    multiple of that, so hitting it is evidence of a disconnected
    network or a cooled-off (finite-TTL) rumour, not bad luck.
    """
    return max(256, 32 * n * n)


def _nth_bit(mask: int, index: int) -> int:
    """The ``index``-th (0-based, ascending) set bit of ``mask``."""
    for _ in range(index):
        mask &= mask - 1
    low = mask & -mask
    return low.bit_length() - 1


def _random_bit(rng: SplitMix64, mask: int) -> int:
    """A uniformly random set bit of a non-zero ``mask``."""
    return _nth_bit(mask, rng.randrange(mask.bit_count()))


def _resolve_receivers(
    intents: Sequence[Tuple[int, _P, Tuple[int, ...]]], rng: SplitMix64
) -> List[Tuple[int, _P, Tuple[int, ...]]]:
    """One-receive-per-processor conflict resolution.

    A seeded random intent order decides contested receivers; losing
    destinations are trimmed (the multicast shrinks) and emptied intents
    are dropped.  Shared by the epidemic and coded engines so both play
    by the identical model rules.
    """
    claimed = 0
    kept: List[Tuple[int, _P, Tuple[int, ...]]] = []
    for idx in rng.sample(range(len(intents)), len(intents)):
        sender, payload, dests = intents[idx]
        live = tuple(d for d in dests if not (claimed >> d) & 1)
        if not live:
            continue
        for d in live:
            claimed |= 1 << d
        kept.append((sender, payload, live))
    return kept


def _surviving_destinations(
    model: FaultModel, t: int, sender: int, dests: Sequence[int]
) -> Tuple[Optional[List[int]], int]:
    """Apply the lossy-model hazards in their canonical order.

    Returns ``(survivors, lost)``; ``survivors is None`` means the send
    itself was suppressed (sender fail-stopped or crashed).  The hazard
    order matches :func:`repro.simulator.lossy.execute_with_faults`
    exactly, so an online run and a transcript replay under the same
    model consume the same coordinate-keyed draws and agree on every
    outcome.
    """
    if model.fail_stopped(t, sender) or model.crashed(t, sender):
        return None, 0
    survivors: List[int] = []
    lost = 0
    for d in dests:
        if (
            model.fail_stopped(t, d)
            or model.link_failed(t, sender, d)
            or model.link_out(t, sender, d)
            or model.crashed(t, d)
            or model.drops_delivery(t, sender, d)
        ):
            lost += 1
        else:
            survivors.append(d)
    return survivors, lost


@dataclass(frozen=True)
class EpidemicResult:
    """Everything observable about one epidemic run.

    ``schedule`` is the transcript of *attempted* multicasts — a
    model-valid :class:`~repro.core.schedule.Schedule` (replayable on
    the fault-free engine, or on
    :func:`~repro.simulator.lossy.execute_with_faults` under the same
    ``model`` to reproduce this exact outcome).  Counts are attempt-side
    (``deliveries``) and outcome-side (``delivered`` / ``lost`` /
    ``duplicate_deliveries``).
    """

    variant: str
    seed: int
    complete: bool
    rounds: int
    schedule: Schedule
    completion_times: Tuple[Optional[int], ...]
    messages_sent: int
    deliveries: int
    delivered: int
    lost: int
    duplicate_deliveries: int
    suppressed_sends: int
    final_holds: Tuple[int, ...]

    @property
    def completion_round(self) -> Optional[int]:
        """Latest per-vertex completion time (``None`` when incomplete)."""
        if not self.complete:
            return None
        return max(t for t in self.completion_times if t is not None)

    @property
    def redundancy(self) -> float:
        """Fraction of successful deliveries that were duplicates."""
        return self.duplicate_deliveries / self.delivered if self.delivered else 0.0


def run_epidemic(
    graph: Graph,
    *,
    variant: str = "push-pull",
    seed: int = 0,
    fanout: int = 1,
    ttl: Optional[int] = None,
    max_rounds: Optional[int] = None,
    messages: Optional[Sequence[int]] = None,
    model: Optional[FaultModel] = None,
) -> EpidemicResult:
    """Run the online epidemic protocol and return its transcript.

    Parameters
    ----------
    graph:
        The communication network (any connected or disconnected graph;
        completeness is only guaranteed on connected ones).
    variant:
        ``"push"``, ``"pull"`` or ``"push-pull"``.
    seed:
        Root seed — the run is a pure function of it (plus the model's).
    fanout:
        Maximum multicast width of a push (pull responses are unicast).
    ttl:
        Rounds a rumour stays push-eligible after first arrival
        (``None`` = forever; see module docstring).
    max_rounds:
        Round budget (default :func:`default_epidemic_horizon`).
    messages:
        Message id originated by each vertex (default: identity).  Pass
        DFS labels to run in label space like the tree algorithms.
    model:
        Optional seeded fault model; decisions then read the *faulty*
        possession state (the online protocol), and the transcript
        records attempts while the counters record outcomes.

    hot-loop-ok: the round loop is the protocol itself (decisions are
    data-dependent coin flips per vertex) — this module is a baseline,
    not a planner hot path.
    """
    if variant not in EPIDEMIC_VARIANTS:
        raise ReproError(
            f"unknown epidemic variant {variant!r}; choose from {EPIDEMIC_VARIANTS}"
        )
    if fanout < 1:
        raise ReproError(f"fanout must be >= 1, got {fanout}")
    if ttl is not None and ttl < 1:
        raise ReproError(f"ttl must be >= 1 or None, got {ttl}")
    n = graph.n
    origin = list(range(n)) if messages is None else [int(m) for m in messages]
    if len(origin) != n:
        raise ReproError(
            f"messages has {len(origin)} entries for n={n} processors"
        )
    full = (1 << n) - 1
    holds: List[int] = [0] * n
    for v, m in enumerate(origin):
        if not 0 <= m < n:
            raise ReproError(f"vertex {v} originates out-of-range message {m}")
        holds[v] |= 1 << m
    cap = default_epidemic_horizon(n) if max_rounds is None else max_rounds
    if cap < 0:
        raise ReproError(f"max_rounds must be >= 0, got {cap}")

    null_model = model is None or model.is_null
    do_push = variant in ("push", "push-pull")
    do_pull = variant in ("pull", "push-pull")
    # hot_expiry[v][m] = first round at which m is no longer pushable.
    hot_expiry: Optional[List[Dict[int, int]]] = None
    if ttl is not None:
        hot_expiry = [{origin[v]: ttl} for v in range(n)]

    completion: List[Optional[int]] = [0 if holds[v] == full else None for v in range(n)]
    rounds: List[Round] = []
    pending: List[Tuple[int, int, int]] = []  # (receiver, sender, message)
    messages_sent = deliveries = delivered = lost = duplicates = suppressed = 0

    t = 0
    while True:
        # Receive-before-send: land last round's surviving deliveries.
        for receiver, _sender, message in pending:
            bit = 1 << message
            if holds[receiver] & bit:
                duplicates += 1
            else:
                holds[receiver] |= bit
                if hot_expiry is not None and ttl is not None:
                    hot_expiry[receiver][message] = t + ttl
                if holds[receiver] == full and completion[receiver] is None:
                    completion[receiver] = t
            delivered += 1
        pending = []
        if all(h == full for h in holds) or t >= cap:
            break

        # ------------------------------------------------------------------
        # Intent formation (one candidate multicast per vertex).
        # ------------------------------------------------------------------
        intents: List[Tuple[int, int, Tuple[int, ...]]] = []
        served: Dict[int, Tuple[int, int]] = {}  # responder -> (requester, msg)
        if do_pull:
            requests: Dict[int, List[int]] = {}
            for v in range(n):
                neigh = graph.neighbors(v)
                if not neigh or holds[v] == full:
                    continue  # a complete vertex has nothing left to pull
                rng = SplitMix64(keyed_u64(seed, _TAG_PULL_PEER, t, v))
                requests.setdefault(rng.choice(neigh), []).append(v)
            for u, askers in requests.items():
                rng = SplitMix64(keyed_u64(seed, _TAG_PULL_SERVE, t, u))
                for w in rng.sample(askers, len(askers)):
                    useful = holds[u] & ~holds[w]
                    if useful:
                        served[u] = (w, _random_bit(rng, useful))
                        break
        for v in range(n):
            if v in served:
                # A pull response wins the vertex's one send this round:
                # it is demand-driven, so never wasted.
                w, m = served[v]
                intents.append((v, m, (w,)))
                continue
            if not do_push:
                continue
            eligible = holds[v]
            if hot_expiry is not None:
                hot = 0
                for m, expiry in hot_expiry[v].items():
                    if t < expiry:
                        hot |= 1 << m
                eligible &= hot
            neigh = graph.neighbors(v)
            if not eligible or not neigh:
                continue
            rng = SplitMix64(keyed_u64(seed, _TAG_PUSH_MSG, t, v))
            m = _random_bit(rng, eligible)
            dest_rng = SplitMix64(keyed_u64(seed, _TAG_PUSH_DEST, t, v))
            intents.append((v, m, tuple(dest_rng.sample(neigh, fanout))))

        # ------------------------------------------------------------------
        # Conflict resolution: one receive per processor per round.  A
        # seeded random intent order decides contested receivers; losing
        # destinations are trimmed (the multicast shrinks), empty
        # intents are dropped entirely.
        # ------------------------------------------------------------------
        order_rng = SplitMix64(keyed_u64(seed, _TAG_ORDER, t))
        resolved = _resolve_receivers(intents, order_rng)
        rounds.append(
            Round(
                Transmission(sender=s, message=m, destinations=d)
                for s, m, d in resolved
            )
        )
        for sender, m, dests in resolved:
            messages_sent += 1
            deliveries += len(dests)
            if null_model:
                survivors: Optional[Sequence[int]] = dests
            else:
                assert model is not None
                survivors, lost_here = _surviving_destinations(model, t, sender, dests)
                lost += lost_here
            if survivors is None:
                suppressed += 1
                continue
            for d in survivors:
                pending.append((d, sender, m))
        t += 1

    name = f"Epidemic-{variant}(seed={seed})"
    return EpidemicResult(
        variant=variant,
        seed=seed,
        complete=all(h == full for h in holds),
        rounds=len(rounds),
        schedule=Schedule(rounds, name=name),
        completion_times=tuple(completion),
        messages_sent=messages_sent,
        deliveries=deliveries,
        delivered=delivered,
        lost=lost,
        duplicate_deliveries=duplicates,
        suppressed_sends=suppressed,
        final_holds=tuple(holds),
    )


def epidemic_schedule(
    graph: Graph,
    *,
    variant: str = "push-pull",
    seed: int = 0,
    fanout: int = 1,
    ttl: Optional[int] = None,
    max_rounds: Optional[int] = None,
    messages: Optional[Sequence[int]] = None,
) -> Schedule:
    """The fault-free epidemic transcript as a plain schedule.

    Raises :class:`~repro.exceptions.ReproError` if the run does not
    complete within the round budget (a disconnected network, or a
    finite TTL that let every copy of some rumour cool off).
    """
    result = run_epidemic(
        graph,
        variant=variant,
        seed=seed,
        fanout=fanout,
        ttl=ttl,
        max_rounds=max_rounds,
        messages=messages,
    )
    if not result.complete:
        raise ReproError(
            f"epidemic {variant} gossip did not complete within "
            f"{result.rounds} rounds (disconnected network or expired TTL)"
        )
    return result.schedule


def _tree_epidemic(labeled: LabeledTree, variant: str) -> Schedule:
    """Registry adapter: epidemic gossip on the spanning tree, DFS labels.

    The registry contract hands algorithms the labelled spanning tree
    only, so the registered epidemic variants gossip over *tree* edges
    in label space (like every deterministic algorithm); use
    :func:`epidemic_schedule` / :func:`run_epidemic` directly to unleash
    the protocol on the full network.
    """
    return epidemic_schedule(
        tree_to_graph(labeled.tree),
        variant=variant,
        seed=REGISTRY_SEED,
        messages=labeled.labels(),
    )


@register_algorithm("epidemic-push")
def epidemic_push(labeled: LabeledTree) -> Schedule:
    """Seeded random push gossip on the labelled spanning tree."""
    return _tree_epidemic(labeled, "push")


@register_algorithm("epidemic-pull")
def epidemic_pull(labeled: LabeledTree) -> Schedule:
    """Seeded random pull (anti-entropy) gossip on the labelled spanning tree."""
    return _tree_epidemic(labeled, "pull")


@register_algorithm("epidemic-push-pull")
def epidemic_push_pull(labeled: LabeledTree) -> Schedule:
    """Seeded random push-pull gossip on the labelled spanning tree."""
    return _tree_epidemic(labeled, "push-pull")
