"""Hamiltonian-circuit gossiping (paper Section 1, Fig. 1).

On a network with a Hamiltonian circuit, gossiping meets the trivial
lower bound ``n - 1``: in round 0 every processor sends its own message
to its clockwise neighbour, and in every later round it forwards the
message it just received from its counter-clockwise neighbour.  After
``n - 1`` rounds every message has visited every processor.

:func:`ring_gossip` emits that schedule for any given Hamiltonian circuit
(by default the identity circuit ``0, 1, ..., n-1`` of a cycle graph);
:func:`hamiltonian_circuit` searches for a circuit in an arbitrary graph
by backtracking — exponential in general (the decision problem is
NP-complete, [10]), usable for the small instances in tests and benches.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..exceptions import GraphError
from ..networks.graph import Graph
from .schedule import Round, Schedule, Transmission

__all__ = ["ring_gossip", "hamiltonian_circuit", "ring_gossip_on_graph"]


def ring_gossip(circuit: Sequence[int]) -> Schedule:
    """The rotating ``n - 1``-round schedule along a Hamiltonian circuit.

    ``circuit`` lists the vertices in circuit order; message ids are the
    vertex ids (message ``v`` starts at processor ``v``).
    """
    order = [int(v) for v in circuit]
    n = len(order)
    if n < 3:
        raise GraphError("a Hamiltonian circuit needs at least 3 vertices")
    if sorted(order) != list(range(n)):
        raise GraphError("circuit must visit each of 0..n-1 exactly once")
    rounds: List[Round] = []
    carried = list(order)  # message currently at each circuit position
    for _ in range(n - 1):
        rounds.append(
            Round(
                Transmission(
                    sender=order[p],
                    message=carried[p],
                    destinations=frozenset({order[(p + 1) % n]}),
                )
                for p in range(n)
            )
        )
        carried = [carried[-1]] + carried[:-1]
    return Schedule(rounds, name="ring")


def hamiltonian_circuit(graph: Graph) -> Optional[List[int]]:
    """Find a Hamiltonian circuit by backtracking, or ``None``.

    Exponential worst case; prunes on degree-one dead ends.  Intended for
    the small paper networks (it proves, e.g., that the Petersen graph
    and N3 really have no circuit).
    """
    n = graph.n
    if n < 3:
        return None
    if int(graph.degrees().min()) < 2:
        return None
    path = [0]
    on_path = [False] * n
    on_path[0] = True

    def extend() -> bool:
        if len(path) == n:
            return graph.has_edge(path[-1], path[0])
        for nxt in graph.neighbors(path[-1]):
            if not on_path[nxt]:
                path.append(nxt)
                on_path[nxt] = True
                if extend():
                    return True
                on_path[nxt] = False
                path.pop()
        return False

    return list(path) if extend() else None


def ring_gossip_on_graph(graph: Graph) -> Schedule:
    """Find a Hamiltonian circuit in ``graph`` and gossip along it.

    Raises :class:`GraphError` when the graph has none — use the tree
    algorithms instead in that case.
    """
    circuit = hamiltonian_circuit(graph)
    if circuit is None:
        raise GraphError(
            f"graph {graph.name or graph!r} has no Hamiltonian circuit"
        )
    return ring_gossip(circuit)
