"""Recovery scheduling — repairing lossy executions with model-legal rounds.

The paper's ``n + r`` guarantee assumes every delivery lands.  When a
:class:`~repro.simulator.lossy.FaultModel` destroys some of them, the
execution ends with per-processor *missing sets* — and because hold sets
only ever grow, the union of all hold sets always covers every message
(each message's origin still holds it).  On a connected tree that means
a *nearest holder* exists for every missing ``(processor, message)``
pair, so gossip is always finishable by appending more rounds.

That contract holds for *transient* faults only.  Permanent fail-stop
crashes and severed links (``fail_stop_rate`` / ``link_fail_rate``) can
make a missing pair unreachable forever; :func:`recover` detects this
*before* entering its repair loop and raises a typed
:class:`~repro.exceptions.PartitionedNetworkError` naming the offending
pairs, instead of burning the whole exponential budget on doomed
retransmissions.  The degraded "gossip among survivors" guarantee for
that regime lives in :mod:`repro.core.survival`.

:func:`recover` is the execute → diagnose → repair loop:

1. diagnose the missing sets of the latest lossy execution;
2. plan *repair rounds* fault-free from the faulty hold state —
   nearest-holder retransmission over **tree edges**: every round, each
   processor holding something a tree-neighbour misses multicasts the
   message covering the most starved neighbours (so messages flow
   hop-by-hop from their nearest holders, and the two communication
   rules hold by construction: one send and one receive per processor
   per round, every transmission along a tree edge);
3. append the repair rounds and re-execute the *whole* schedule under
   the same fault model.  Fault decisions are pure functions of
   ``(seed, round, endpoints)``, so the original prefix replays
   identically and only the new rounds take fresh fault draws — a
   retransmission is never doomed to repeat the loss it repairs;
4. repeat with an exponentially growing per-attempt round budget until
   gossip completes or ``max_repair_rounds`` is exhausted, in which
   case a typed :class:`~repro.exceptions.RecoveryExhaustedError` is
   raised.

Because faults only ever *remove* deliveries, the fault-free execution
of a repaired schedule holds a superset of the lossy hold state at every
time step; a repaired schedule that completes under faults therefore
always passes ``execute_schedule(..., require_complete=True)`` on the
fault-free engine (repairs at worst become duplicate deliveries, which
are model-legal waste).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..exceptions import (
    PartitionedNetworkError,
    RecoveryExhaustedError,
    ReproError,
)
from .schedule import Round, Schedule, Transmission

if TYPE_CHECKING:  # runtime imports are lazy to avoid core <-> simulator cycles
    from ..networks.graph import Graph
    from ..simulator.lossy import FaultModel, FaultyExecutionResult
    from .gossip import GossipPlan

__all__ = [
    "RecoveryResult",
    "recover",
    "execute_plan_with_faults",
    "plan_repair_rounds",
    "REPAIR_POLICIES",
]

#: Supported repair policies: ``"nearest-holder"`` multicasts each
#: repair message to every starved tree-neighbour at once; ``"unicast"``
#: restricts repairs to one receiver per send (a telephone-style
#: baseline the benchmarks contrast overhead against).
REPAIR_POLICIES = ("nearest-holder", "unicast")


def execute_plan_with_faults(
    plan: "GossipPlan",
    model: "FaultModel",
    *,
    schedule: Optional[Schedule] = None,
    record_arrivals: bool = False,
) -> "FaultyExecutionResult":
    """Run a :class:`GossipPlan`'s schedule under ``model``.

    Convenience wrapper supplying the plan's labelled initial holdings
    (message ids in plan schedules are DFS labels).  ``schedule``
    overrides the executed schedule — the recovery loop passes the
    repaired extension here.
    """
    from ..simulator.lossy import execute_with_faults
    from ..simulator.state import labeled_holdings

    return execute_with_faults(
        plan.graph,
        plan.schedule if schedule is None else schedule,
        model,
        initial_holds=labeled_holdings(plan.labeled.labels()),
        n_messages=plan.graph.n,
        record_arrivals=record_arrivals,
    )


@dataclass(frozen=True)
class RecoveryResult:
    """Outcome of a successful :func:`recover` run.

    Attributes
    ----------
    schedule:
        The repaired schedule (original rounds plus appended repairs).
    result:
        The final lossy execution — always ``complete``.
    attempts:
        Number of execute → diagnose → repair iterations.
    repair_rounds:
        Rounds appended beyond the original schedule.
    baseline_total:
        The fault-free schedule length (the paper's ``n + r`` regime).
    overhead_rounds:
        Extra rounds beyond the fault-free baseline
        (``schedule.total_time - baseline_total``).
    """

    schedule: Schedule
    result: "FaultyExecutionResult"
    attempts: int
    repair_rounds: int
    baseline_total: int

    @property
    def overhead_rounds(self) -> int:
        return self.schedule.total_time - self.baseline_total

    @property
    def overhead_ratio(self) -> float:
        """Overhead as a fraction of the fault-free schedule length."""
        if self.baseline_total == 0:
            return 0.0
        return self.overhead_rounds / self.baseline_total


def plan_repair_rounds(
    adjacency: Dict[int, Tuple[int, ...]],
    holds: List[int],
    n_messages: int,
    *,
    max_rounds: int,
    policy: str = "nearest-holder",
) -> List[Round]:
    """Plan fault-free repair rounds from the hold state ``holds``.

    Greedy nearest-holder propagation: every round, each processor (in
    ascending id order, for determinism) that holds a message some
    neighbour in ``adjacency`` misses multicasts the message covering
    the most not-yet-served neighbours (ties break to the smallest
    message id).  Each planned delivery updates the planning state, so
    messages flood outward from their holders one hop per round — the
    hop-by-hop realisation of nearest-holder retransmission.

    Stops early once everyone is complete; returns at most
    ``max_rounds`` rounds.  Every returned round satisfies the two
    communication rules by construction.
    """
    if policy not in REPAIR_POLICIES:
        raise ReproError(
            f"unknown repair policy {policy!r}; choose from {REPAIR_POLICIES}"
        )
    full = (1 << n_messages) - 1
    holds = list(holds)
    rounds: List[Round] = []
    for _ in range(max_rounds):
        if all(h == full for h in holds):
            break
        receiving: set = set()
        txs: List[Transmission] = []
        deliveries: List[Tuple[int, int]] = []
        for u in sorted(adjacency):
            # message -> starved neighbours it would serve this round
            candidates: Dict[int, List[int]] = {}
            for v in adjacency[u]:
                if v in receiving:
                    continue
                need = holds[u] & ~holds[v] & full
                m = need
                while m:
                    low = m & -m
                    candidates.setdefault(low.bit_length() - 1, []).append(v)
                    m ^= low
            if not candidates:
                continue
            message, dests = max(
                candidates.items(), key=lambda kv: (len(kv[1]), -kv[0])
            )
            if policy == "unicast":
                dests = dests[:1]
            txs.append(
                Transmission(sender=u, message=message, destinations=frozenset(dests))
            )
            receiving.update(dests)
            deliveries.extend((d, message) for d in dests)
        if not txs:
            break  # nobody can make progress (single vertex, or complete)
        rounds.append(Round(txs))
        for d, message in deliveries:
            holds[d] |= 1 << message
    return rounds


def recover(
    graph: "Graph",
    plan: "GossipPlan",
    result: "FaultyExecutionResult",
    *,
    max_repair_rounds: int = 256,
    policy: str = "nearest-holder",
    model: Optional["FaultModel"] = None,
) -> RecoveryResult:
    """Repair a lossy execution of ``plan`` until gossip completes.

    Parameters
    ----------
    graph:
        The communication network (used to re-execute; repairs
        themselves only use tree edges of ``plan.tree``).
    plan:
        The plan whose schedule was executed.
    result:
        The lossy execution to repair (as returned by
        :func:`execute_plan_with_faults` /
        :func:`~repro.simulator.lossy.execute_with_faults`).
    max_repair_rounds:
        Hard budget of appended rounds across all attempts.
    policy:
        One of :data:`REPAIR_POLICIES`.
    model:
        Fault model for re-execution; defaults to ``result.model`` (the
        model that produced the losses being repaired).

    Returns
    -------
    RecoveryResult
        With ``result.complete`` true.  Returns immediately (zero
        attempts, zero overhead) when ``result`` is already complete.

    Raises
    ------
    RecoveryExhaustedError
        The budget ran out with processors still missing messages.
    PartitionedNetworkError
        The fault model killed processors or links for good and some
        missing ``(processor, message)`` pair has no live holder
        reachable over the surviving repair substrate — full recovery is
        *impossible*, so the error is raised before a single repair
        round is planned (use :func:`repro.core.survival.survive` for
        the degraded guarantee instead).
    """
    from ..simulator.lossy import execute_with_faults

    if model is None:
        model = result.model
    if max_repair_rounds < 1:
        raise ReproError("max_repair_rounds must be >= 1")

    tree_adjacency = _tree_adjacency(plan.tree)
    if not result.complete and model.has_permanent:
        _check_recoverable(tree_adjacency, result, model)
    baseline_total = plan.schedule.total_time
    schedule = plan.schedule
    current = result
    appended = 0
    attempts = 0
    # Exponential round-budget backoff: early attempts append just the
    # fault-free repair need; later attempts get geometrically more
    # headroom so persistent loss cannot stall the loop round-by-round.
    attempt_budget = max(4, plan.tree.height)

    while not current.complete:
        if appended >= max_repair_rounds:
            raise RecoveryExhaustedError(
                f"recovery exhausted after {attempts} attempts / "
                f"{appended} repair rounds (budget {max_repair_rounds}); "
                f"still missing: {current.missing_sets()}",
                attempts=attempts,
                repair_rounds=appended,
                missing=current.missing_sets(),
            )
        attempts += 1
        budget_now = min(attempt_budget, max_repair_rounds - appended)
        repairs = plan_repair_rounds(
            tree_adjacency,
            list(current.final_holds),
            current.n_messages,
            max_rounds=budget_now,
            policy=policy,
        )
        if not repairs:
            raise RecoveryExhaustedError(
                "repair planner made no progress (disconnected repair "
                f"substrate?); still missing: {current.missing_sets()}",
                attempts=attempts,
                repair_rounds=appended,
                missing=current.missing_sets(),
            )
        schedule = Schedule(
            (*schedule.rounds, *repairs),
            name=f"{plan.schedule.name}+repair" if plan.schedule.name else "repair",
        )
        appended += len(repairs)
        attempt_budget *= 2
        current = execute_with_faults(
            graph,
            schedule,
            model,
            initial_holds=list(result.initial_holds),
            n_messages=current.n_messages,
        )

    return RecoveryResult(
        schedule=schedule,
        result=current,
        attempts=attempts,
        repair_rounds=appended,
        baseline_total=baseline_total,
    )


def _check_recoverable(
    tree_adjacency: Dict[int, Tuple[int, ...]],
    result: "FaultyExecutionResult",
    model: "FaultModel",
) -> None:
    """Raise :class:`PartitionedNetworkError` when full recovery is doomed.

    Walks the repair substrate (the tree edges) restricted to processors
    and links still alive at the diagnosis horizon.  A missing
    ``(processor, message)`` pair is *unrecoverable* when the processor
    is dead (it will never receive again) or when no live holder of the
    message is reachable from it over live links.  Permanent failures
    are monotone, so an unrecoverable pair at the horizon stays
    unrecoverable no matter how many repair rounds are appended.
    """
    horizon = result.total_time
    dead = {
        v for v in tree_adjacency if model.fail_stopped(horizon, v)
    }
    live_adjacency: Dict[int, Tuple[int, ...]] = {
        v: tuple(
            u
            for u in nbrs
            if u not in dead and not model.link_failed(horizon, v, u)
        )
        for v, nbrs in tree_adjacency.items()
        if v not in dead
    }
    holds = [int(h) for h in result.final_holds]
    offending: List[Tuple[int, int]] = []
    reach_union: Dict[int, int] = {}
    for v, missing in sorted(result.missing_sets().items()):
        if v in dead:
            offending.extend((v, m) for m in missing)
            continue
        union = reach_union.get(v)
        if union is None:
            union = 0
            stack, seen = [v], {v}
            while stack:
                u = stack.pop()
                union |= holds[u]
                for w in live_adjacency[u]:
                    if w not in seen:
                        seen.add(w)
                        stack.append(w)
            for u in seen:  # one traversal answers every member's query
                reach_union[u] = union
        offending.extend((v, m) for m in missing if not union >> m & 1)
    if offending:
        raise PartitionedNetworkError(
            f"permanent failures make {len(offending)} missing "
            f"(processor, message) pairs unrecoverable "
            f"({len(dead)} fail-stopped processors); first few: "
            f"{offending[:8]} — full recovery is impossible, consider "
            "repro.core.survival.survive for the degraded guarantee",
            pairs=offending,
            dead=tuple(sorted(dead)),
        )


def _tree_adjacency(tree) -> Dict[int, Tuple[int, ...]]:
    """Adjacency view of a :class:`~repro.tree.tree.Tree` (both directions)."""
    adj: Dict[int, List[int]] = {v: [] for v in tree.vertices()}
    for parent, child in tree.edges():
        adj[parent].append(child)
        adj[child].append(parent)
    return {v: tuple(sorted(nbrs)) for v, nbrs in adj.items()}
