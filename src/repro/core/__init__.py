"""Core algorithms: the paper's schedule constructions and baselines.

* :mod:`~repro.core.schedule` — the communication-schedule data model;
* :mod:`~repro.core.concurrent_updown` — the main contribution
  (Theorem 1, ``n + r`` rounds) built from
  :mod:`~repro.core.propagate_up` and :mod:`~repro.core.propagate_down`;
* :mod:`~repro.core.simple` — Lemma 1's ``2n + r - 3`` baseline;
* :mod:`~repro.core.updown` — the reconstructed two-phase predecessor;
* :mod:`~repro.core.ring` / :mod:`~repro.core.broadcast` — the Section 1/2
  special cases;
* :mod:`~repro.core.store_forward` — policy-driven greedy/telephone
  baselines;
* :mod:`~repro.core.gossip` — the end-to-end network pipeline;
* :mod:`~repro.core.recovery` — repair scheduling for lossy executions
  (the fault-tolerance layer over :mod:`repro.simulator.lossy`);
* :mod:`~repro.core.survival` — degraded gossip among the survivors of
  permanent fail-stop crashes and severed links;
* :mod:`~repro.core.epidemic` / :mod:`~repro.core.coded` — the
  randomized half of the field: seeded push/pull/push-pull epidemic
  gossip and GF(2) algebraic (network-coded) gossip baselines.
"""

from .ablations import concurrent_updown_no_lip, no_lip_penalty, propagate_up_no_lip
from .broadcast import broadcast, broadcast_time, telephone_broadcast
from .coded import (
    CodedPacket,
    CodedResult,
    RankTracker,
    run_coded_gossip,
    systematic_coded_schedule,
)
from .concurrent_updown import concurrent_updown, concurrent_updown_on_tree
from .epidemic import (
    EPIDEMIC_VARIANTS,
    EpidemicResult,
    epidemic_schedule,
    run_epidemic,
)
from .gossip import (
    ALGORITHMS,
    GossipPlan,
    NetworkSpec,
    gossip,
    gossip_on_tree,
    register_algorithm,
    resolve_network,
)
from .online import OnlineProcessor, online_matches_offline, run_online_gossip
from .optimal import is_gossipable_within, minimum_gossip_time, optimal_schedule
from .optimal_path import optimal_path_gossip, optimal_path_time
from .propagate_down import propagate_down
from .propagate_up import propagate_up
from .recovery import (
    REPAIR_POLICIES,
    RecoveryResult,
    execute_plan_with_faults,
    plan_repair_rounds,
    recover,
)
from .repeated import RepeatedGossipPlan, minimal_pipeline_offset, repeated_gossip
from .ring import hamiltonian_circuit, ring_gossip, ring_gossip_on_graph
from .survival import (
    ComponentPlan,
    SurvivalDiagnosis,
    SurvivalResult,
    diagnose_survival,
    survive,
    survivor_coverage,
    validate_survival,
)
from .schedule import Round, Schedule, ScheduleBuilder, Transmission, merge_schedules
from .simple import simple_gossip, simple_gossip_on_tree, simple_total_time
from .store_forward import (
    GreedyMulticastPolicy,
    TelephonePolicy,
    UpDownTreePolicy,
    greedy_gossip_on_graph,
    greedy_multicast_gossip,
    greedy_updown_gossip,
    store_forward_schedule,
    telephone_gossip,
    telephone_gossip_on_graph,
)
from .updown import updown_gossip, updown_gossip_on_tree, updown_total_time_bound
from .weighted import WeightedGossipPlan, expand_weighted_tree, weighted_gossip

__all__ = [
    "Transmission",
    "Round",
    "Schedule",
    "ScheduleBuilder",
    "merge_schedules",
    "concurrent_updown",
    "concurrent_updown_on_tree",
    "propagate_up",
    "propagate_down",
    "simple_gossip",
    "simple_gossip_on_tree",
    "simple_total_time",
    "updown_gossip",
    "updown_gossip_on_tree",
    "updown_total_time_bound",
    "ring_gossip",
    "ring_gossip_on_graph",
    "hamiltonian_circuit",
    "broadcast",
    "broadcast_time",
    "telephone_broadcast",
    "no_lip_penalty",
    "concurrent_updown_no_lip",
    "propagate_up_no_lip",
    "run_online_gossip",
    "online_matches_offline",
    "OnlineProcessor",
    "minimum_gossip_time",
    "is_gossipable_within",
    "optimal_schedule",
    "optimal_path_gossip",
    "optimal_path_time",
    "repeated_gossip",
    "minimal_pipeline_offset",
    "RepeatedGossipPlan",
    "recover",
    "RecoveryResult",
    "execute_plan_with_faults",
    "plan_repair_rounds",
    "REPAIR_POLICIES",
    "survive",
    "diagnose_survival",
    "validate_survival",
    "survivor_coverage",
    "SurvivalDiagnosis",
    "SurvivalResult",
    "ComponentPlan",
    "weighted_gossip",
    "expand_weighted_tree",
    "WeightedGossipPlan",
    "greedy_updown_gossip",
    "gossip",
    "gossip_on_tree",
    "GossipPlan",
    "ALGORITHMS",
    "register_algorithm",
    "resolve_network",
    "NetworkSpec",
    "store_forward_schedule",
    "GreedyMulticastPolicy",
    "TelephonePolicy",
    "UpDownTreePolicy",
    "greedy_multicast_gossip",
    "greedy_gossip_on_graph",
    "telephone_gossip",
    "telephone_gossip_on_graph",
    "run_epidemic",
    "epidemic_schedule",
    "EpidemicResult",
    "EPIDEMIC_VARIANTS",
    "run_coded_gossip",
    "systematic_coded_schedule",
    "RankTracker",
    "CodedPacket",
    "CodedResult",
]
