"""Algorithm Propagate-Down (paper Section 3.2, steps D1–D3).

Generates the *downward* half of the ConcurrentUpDown schedule: every
vertex relays towards the leaves the messages originating elsewhere.

Per vertex ``v`` with block ``(i, j, k)`` and children in DFS order:

* **(D3)** — distribute the subtree's own body messages: message ``m`` of
  ``i..j`` leaves at time ``m - k`` towards every child except the one
  whose subtree originated ``m`` (that child already carries it upward);
  only the s-message ``i`` goes to *all* children.  Special case
  ``i == k`` (``v`` lies on the leftmost root-to-leaf spine): the
  s-message cannot leave at time ``i - k = 0`` — that slot is taken by
  the (U3) lip send (or, at the root, by the children's time-1 lookahead
  receive) — so it is postponed to time ``j - k + 1``.
* **(D2)** — cut-through forwarding: every o-message received from the
  parent is multicast to all children *in the same round it arrives*,
  except the arrivals at times ``i - k`` and ``i - k + 1`` (the parent's
  last body messages below ``i``), which would collide with (D3); they
  are held and flushed at times ``j - k + 1`` and ``j - k + 2``.
* **(D1)** is the receive side: o-messages arrive during
  ``2 .. i-k+1`` and ``j-k+3 .. n+k`` (Lemma 3); it generates no events.

The production path (:func:`propagate_down_events`) is level-synchronous
and vectorised: all (D3) events of the whole tree are expanded in one
shot (every nonroot vertex's body interval ``[i, j]`` is a contiguous
run, so its parent's sends towards the *other* children come from a
single repeat/offset expansion), and (D2) walks the levels root-to-leaf,
deriving each level's forwards from the previous level's *actual* event
rows — the generated schedule is exactly the recursive object Lemma 3
reasons about, including the arrival gaps visible in the paper's
Table 4.

Events are compact ``(time, sender, message, excluded-child)`` columns —
the destination set is always "children of the sender, minus the
excluded child" (``-1`` = none excluded), so no bitmask rows are
materialised here; the callers build masks exactly once.
:func:`propagate_down_builder` keeps the seed's per-vertex emission as
the differential-testing reference.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

import numpy as np

from ..tree.labeling import LabeledTree
from ..types import Message, Time
from .propagate_up import _repeat_offsets
from .schedule import ArraySchedule, Schedule, ScheduleBuilder, _bit_of, _mask_width

__all__ = [
    "propagate_down_builder",
    "propagate_down_events",
    "children_masks",
    "down_event_masks",
    "propagate_down",
]


def children_masks(labeled: LabeledTree) -> np.ndarray:
    """Packed ``(n, W)`` bitmask of each vertex's children."""
    arr = labeled.arrays
    n = labeled.n
    masks = np.zeros((n, _mask_width(n)), dtype=np.uint64)
    if len(arr.child_ids):
        parents_flat = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(arr.child_ptr)
        )
        word, bit = _bit_of(arr.child_ids)
        np.bitwise_or.at(masks, (parents_flat, word), bit)
    return masks


def down_event_masks(
    labeled: LabeledTree, senders: np.ndarray, excl: np.ndarray
) -> np.ndarray:
    """Destination bitmask rows for (D2)/(D3) events.

    Row ``e`` holds the children of ``senders[e]`` minus the excluded
    child ``excl[e]`` (ignored when ``-1``).
    """
    masks = children_masks(labeled)[senders]
    has_excl = np.flatnonzero(excl >= 0)
    if len(has_excl):
        word, bit = _bit_of(excl[has_excl])
        masks[has_excl, word] &= ~bit
    return masks


def propagate_down_events(
    labeled: LabeledTree,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """All (D2)/(D3) sends as flat ``(time, sender, message, excl)`` columns.

    Events whose destination set is empty (the excluded child was the
    sender's only child) are already dropped, mirroring the seed
    builder.  hot-loop-ok: the only Python loop below is over tree
    *levels* — the (D2) stream of level ``l`` is defined by the actual
    sends of level ``l - 1``, a genuine sequential dependency; every
    per-level step is whole-array numpy.
    """
    arr = labeled.arrays
    n = labeled.n
    deg = np.diff(arr.child_ptr)
    internal = deg > 0
    height = arr.height
    lp = arr.level_ptr
    gap = arr.i - arr.k  # first held-arrival slot per vertex
    flush0 = arr.j - arr.k + 1  # first flush slot per vertex

    # ---- (D3) s-events: i to all children; postponed when i == k. ----
    # by_level order keeps them grouped by the sender's level.
    s_v = arr.by_level[internal[arr.by_level]]
    s_t = np.where(arr.i[s_v] == arr.k[s_v], flush0[s_v], gap[s_v])
    s_m = arr.i[s_v]
    s_bounds = np.searchsorted(arr.k[s_v], np.arange(height + 1))

    # ---- (D3) body events: every nonroot c owns the contiguous run
    # [i_c, j_c] of its parent's body messages; the parent sends each m
    # of that run at m - k_parent to its children minus c.  Owners are
    # taken in level order so the events stay grouped by sender level
    # (sender level = owner level - 1). ----
    owners = arr.by_level[lp[1] :]  # every nonroot vertex, level-ascending
    reps, offs = _repeat_offsets(arr.size[owners])
    b_excl = owners[reps]
    b_sender = arr.parent[b_excl]
    b_m = arr.i[b_excl] + offs
    b_t = b_m - arr.k[b_sender]
    # Drop empty-destination events now (the excluded child was the
    # sender's only child — the seed builder's emit() skip); this keeps
    # every later stage filter-free.
    bkeep = deg[b_sender] > 1
    if not bkeep.all():
        b_t, b_sender, b_m, b_excl = (
            b_t[bkeep], b_sender[bkeep], b_m[bkeep], b_excl[bkeep]
        )
    b_bounds = np.searchsorted(arr.k[b_sender], np.arange(height + 1))

    # Internal-children CSR (only vertices with children forward anything).
    flat_parents = np.repeat(np.arange(n, dtype=np.int64), deg)
    int_keep = internal[arr.child_ids]
    int_child_ids = arr.child_ids[int_keep]
    int_deg = np.bincount(flat_parents[int_keep], minlength=n).astype(np.int64)
    int_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(int_deg, out=int_ptr[1:])

    def expand(pt, ps, pm, px=None):
        # Arrival rows at the *internal* children of each parent event
        # (leaf children receive but never forward), minus the excluded
        # child when ``px`` is given.
        reps2, offs2 = _repeat_offsets(int_deg[ps])
        child = int_child_ids[int_ptr[ps][reps2] + offs2]
        if px is not None:
            keepers = child != px[reps2]
            reps2, child = reps2[keepers], child[keepers]
        return pt[reps2] + 1, child, pm[reps2]

    def expand_bulk(pt, ps, pm):
        # Same expansion, no exclusions — the (D2) bulk stream.  Internal
        # fan-out is tiny (column 0 covers nearly every event), so a
        # short column loop over the shrinking high-fan-out remainder is
        # cheaper than the repeat/offset machinery.
        d = int_deg[ps]
        if not len(d) or not d.any():
            e = np.empty(0, dtype=np.int64)
            return e, e, e
        base = int_ptr[ps]
        sel = np.flatnonzero(d > 0)
        parts = []
        for c in range(int(d.max())):
            if c:
                sel = sel[d[sel] > c]
            parts.append((pt[sel] + 1, int_child_ids[base[sel] + c], pm[sel]))
        if len(parts) == 1:
            return parts[0]
        return (
            np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
            np.concatenate([p[2] for p in parts]),
        )

    # ---- (D2): forward o-messages level by level. ----
    all_t: List[np.ndarray] = [s_t, b_t]
    all_s: List[np.ndarray] = [s_v, b_sender]
    all_m: List[np.ndarray] = [s_m, b_m]
    p_t = p_s = p_m = None  # previous level's forwards (never excluded)
    for lvl in range(height):  # hot-loop-ok (see docstring)
        # Events sent from level `lvl`: s- and body events of this level
        # (static, tiny) + the forwards computed last round (the bulk).
        sl = slice(s_bounds[lvl], s_bounds[lvl + 1])
        bl = slice(b_bounds[lvl], b_bounds[lvl + 1])
        parts = []
        if sl.stop > sl.start or bl.stop > bl.start:
            parts.append(expand(
                np.concatenate([s_t[sl], b_t[bl]]),
                np.concatenate([s_v[sl], b_sender[bl]]),
                np.concatenate([s_m[sl], b_m[bl]]),
                np.concatenate(
                    [np.full(sl.stop - sl.start, -1, dtype=np.int64), b_excl[bl]]
                ),
            ))
        if p_t is not None and len(p_t):
            parts.append(expand_bulk(p_t, p_s, p_m))
        if not parts:
            p_t = None
            continue
        if len(parts) == 1:
            e_t, child, e_m = parts[0]
        else:
            e_t = np.concatenate([p[0] for p in parts])
            child = np.concatenate([p[1] for p in parts])
            e_m = np.concatenate([p[2] for p in parts])
        if len(child) == 0:
            p_t = None
            continue
        # A vertex forwards each arrival in the same round — except the
        # held arrivals (times gap, gap+1), which flush at j - k + 1,
        # j - k + 2 in arrival order.  The send list is therefore the
        # arrival list with the held rows' times rewritten in place.
        cgap = gap[child]
        held = np.flatnonzero((e_t == cgap) | (e_t == cgap + 1))
        if len(held):
            h_child = child[held]
            order = np.lexsort((e_t[held], h_child))
            h_child = h_child[order]
            first = np.ones(len(h_child), dtype=bool)
            first[1:] = h_child[1:] != h_child[:-1]
            starts = np.flatnonzero(first)
            rank = np.arange(len(h_child), dtype=np.int64) - np.repeat(
                starts, np.diff(np.append(starts, len(h_child)))
            )
            e_t[held[order]] = flush0[h_child] + rank
        p_t, p_s, p_m = e_t, child, e_m
        all_t.append(e_t); all_s.append(child); all_m.append(e_m)

    times = np.concatenate(all_t)
    senders = np.concatenate(all_s)
    messages = np.concatenate(all_m)
    # Only the (D3) body block carries an excluded child; it sits at a
    # fixed offset right after the s-events.
    excl = np.full(len(times), -1, dtype=np.int64)
    excl[len(s_v) : len(s_v) + len(b_t)] = b_excl
    return times, senders, messages, excl


def propagate_down_builder(labeled: LabeledTree) -> ScheduleBuilder:
    """Emit all (D2)/(D3) send events into a fresh builder.

    The seed per-vertex reference implementation, kept for ablations and
    for differential tests against :func:`propagate_down_events`.
    """
    builder = ScheduleBuilder()
    tree = labeled.tree
    # Downward sends already emitted, per vertex, so each child can
    # reconstruct its arrival stream: (send_time, message, destinations).
    down_sends: Dict[int, List[Tuple[Time, Message, FrozenSet[int]]]] = {
        v: [] for v in range(labeled.n)
    }

    def emit(v: int, time: Time, message: Message, dests: Tuple[int, ...]) -> None:
        if dests:
            builder.send(time, v, message, dests)
            down_sends[v].append((time, message, frozenset(dests)))

    for v in tree.bfs_order():
        kids = tree.children(v)
        if not kids:
            continue  # leaves relay nothing downward
        block = labeled.block(v)
        i, j, k = block.i, block.j, block.k

        # (D3): body messages i..j at times i-k .. j-k.
        for m in range(i, j + 1):
            if m == i:
                send_time = (j - k + 1) if i == k else (i - k)
                emit(v, send_time, m, kids)
            else:
                owner = labeled.owner_child(v, m)
                emit(v, m - k, m, tuple(c for c in kids if c != owner))

        # (D2): forward o-messages arriving from the parent.
        if not tree.is_root(v):
            parent = tree.parent(v)
            arrivals = sorted(
                (send_time + 1, message)
                for (send_time, message, dests) in down_sends[parent]
                if v in dests
            )
            held: List[Message] = []
            for arrival_time, m in arrivals:
                if arrival_time in (i - k, i - k + 1):
                    held.append(m)
                else:
                    emit(v, arrival_time, m, kids)
            for offset, m in enumerate(held):
                emit(v, j - k + 1 + offset, m, kids)
    return builder


def propagate_down(labeled: LabeledTree) -> Schedule:
    """The standalone Propagate-Down schedule (for inspection and tests).

    Alone it distributes o-messages and body messages downward but never
    moves a message towards the root; it is the second half of the
    ConcurrentUpDown overlap (Lemma 3).
    """
    times, senders, messages, excl = propagate_down_events(labeled)
    arrays = ArraySchedule.from_events(
        times, senders, messages, down_event_masks(labeled, senders, excl),
        n=labeled.n, n_messages=labeled.n, name="Propagate-Down",
    )
    return Schedule.from_arrays(arrays)
