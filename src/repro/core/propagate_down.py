"""Algorithm Propagate-Down (paper Section 3.2, steps D1–D3).

Generates the *downward* half of the ConcurrentUpDown schedule: every
vertex relays towards the leaves the messages originating elsewhere.

Per vertex ``v`` with block ``(i, j, k)`` and children in DFS order:

* **(D3)** — distribute the subtree's own body messages: message ``m`` of
  ``i..j`` leaves at time ``m - k`` towards every child except the one
  whose subtree originated ``m`` (that child already carries it upward);
  only the s-message ``i`` goes to *all* children.  Special case
  ``i == k`` (``v`` lies on the leftmost root-to-leaf spine): the
  s-message cannot leave at time ``i - k = 0`` — that slot is taken by
  the (U3) lip send (or, at the root, by the children's time-1 lookahead
  receive) — so it is postponed to time ``j - k + 1``.
* **(D2)** — cut-through forwarding: every o-message received from the
  parent is multicast to all children *in the same round it arrives*,
  except the arrivals at times ``i - k`` and ``i - k + 1`` (the parent's
  last body messages below ``i``), which would collide with (D3); they
  are held and flushed at times ``j - k + 1`` and ``j - k + 2``.
* **(D1)** is the receive side: o-messages arrive during
  ``2 .. i-k+1`` and ``j-k+3 .. n+k`` (Lemma 3); it generates no events.

The implementation walks the tree level by level: a vertex's (D2) events
are derived from the *actual* downward sends of its parent, so the
generated schedule is exactly the recursive object Lemma 3 reasons
about — including the arrival gaps visible in the paper's Table 4.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from ..tree.labeling import LabeledTree
from ..types import Message, Time
from .schedule import Schedule, ScheduleBuilder

__all__ = ["propagate_down_builder", "propagate_down"]


def propagate_down_builder(labeled: LabeledTree) -> ScheduleBuilder:
    """Emit all (D2)/(D3) send events into a fresh builder."""
    builder = ScheduleBuilder()
    tree = labeled.tree
    # Downward sends already emitted, per vertex, so each child can
    # reconstruct its arrival stream: (send_time, message, destinations).
    down_sends: Dict[int, List[Tuple[Time, Message, FrozenSet[int]]]] = {
        v: [] for v in range(labeled.n)
    }

    def emit(v: int, time: Time, message: Message, dests: Tuple[int, ...]) -> None:
        if dests:
            builder.send(time, v, message, dests)
            down_sends[v].append((time, message, frozenset(dests)))

    for v in tree.bfs_order():
        kids = tree.children(v)
        if not kids:
            continue  # leaves relay nothing downward
        block = labeled.block(v)
        i, j, k = block.i, block.j, block.k

        # (D3): body messages i..j at times i-k .. j-k.
        for m in range(i, j + 1):
            if m == i:
                send_time = (j - k + 1) if i == k else (i - k)
                emit(v, send_time, m, kids)
            else:
                owner = labeled.owner_child(v, m)
                emit(v, m - k, m, tuple(c for c in kids if c != owner))

        # (D2): forward o-messages arriving from the parent.
        if not tree.is_root(v):
            parent = tree.parent(v)
            arrivals = sorted(
                (send_time + 1, message)
                for (send_time, message, dests) in down_sends[parent]
                if v in dests
            )
            held: List[Message] = []
            for arrival_time, m in arrivals:
                if arrival_time in (i - k, i - k + 1):
                    held.append(m)
                else:
                    emit(v, arrival_time, m, kids)
            for offset, m in enumerate(held):
                emit(v, j - k + 1 + offset, m, kids)
    return builder


def propagate_down(labeled: LabeledTree) -> Schedule:
    """The standalone Propagate-Down schedule (for inspection and tests).

    Alone it distributes o-messages and body messages downward but never
    moves a message towards the root; it is the second half of the
    ConcurrentUpDown overlap (Lemma 3).
    """
    return propagate_down_builder(labeled).build(name="Propagate-Down")
