"""Survivability — gossiping on whatever the permanent failures left.

:mod:`repro.core.recovery` repairs *transient* losses: it assumes every
missing ``(processor, message)`` pair still has a nearest holder
reachable over the tree, which is true exactly as long as nothing died
for good.  Permanent fail-stop crashes and severed links
(:class:`~repro.simulator.lossy.FaultModel` with ``fail_stop_rate`` /
``link_fail_rate``) break that contract: a dead processor can never
complete, and a partitioned survivor can never hear from the far side.
This module is the layer that handles the residue:

1. :func:`diagnose_survival` reads the residual network off a faulty
   execution — which processors fail-stopped, which links failed, and
   the connected components the survivors split into;
2. :func:`survive` re-plans *degraded gossip per surviving component*
   over the residual edges, using the same fast planner the service
   uses (pruned center sweep + the paper's tree algorithms), translates
   each component schedule back into original vertex/message ids, and
   merges the components side by side (they are vertex-disjoint, so the
   two communication rules hold by construction);
3. :func:`validate_survival` strictly checks the **degraded completion
   semantics**: *every live processor ends holding every message whose
   origin is live and in its own component* ("gossip among survivors"),
   and no dead processor's hold set ever grows (nothing is delivered to
   the dead).

Messages from dead origins are *not* guaranteed — a survivor may happen
to hold one (it leaked out before the crash), but the residual network
cannot promise to spread what may no longer exist anywhere alive.

Because each component's schedule is a fresh, paper-exact gossip plan on
the induced survivor subgraph, the paper's ``n + r`` bound degrades
gracefully to ``n_i + r_i`` per surviving component ``i`` (component
size and residual-tree height), and the merged survival schedule takes
``max_i (n_i + r_i)`` rounds.

The survival rounds are executed on the fault-free engine: the permanent
residue is exactly what the diagnosis captured, and transient re-losses
during repair remain :func:`~repro.core.recovery.recover`'s department.
This is what makes the completion semantics *deterministic* — a single
diagnose pass either yields full survivor coverage or raises the typed
:class:`~repro.exceptions.PartitionedNetworkError` /
:class:`~repro.exceptions.SurvivorSetError`, never an exhausted budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..exceptions import PartitionedNetworkError, ReproError, SurvivorSetError
from .schedule import Round, Schedule, Transmission

if TYPE_CHECKING:  # runtime imports are lazy to avoid core <-> simulator cycles
    from ..networks.graph import Graph
    from ..simulator.engine import ExecutionResult
    from ..simulator.lossy import FaultModel, FaultyExecutionResult
    from .gossip import GossipPlan

__all__ = [
    "SurvivalDiagnosis",
    "ComponentPlan",
    "SurvivalResult",
    "diagnose_survival",
    "survive",
    "validate_survival",
    "survivor_coverage",
]


@dataclass(frozen=True)
class SurvivalDiagnosis:
    """The residual network read off one faulty execution.

    Attributes
    ----------
    n:
        Processor count of the original network.
    horizon:
        The round the diagnosis was taken at (permanent failures are
        monotone, so this is "everything that died by ``horizon``").
    dead:
        Fail-stopped processors, ascending.
    failed_links:
        Permanently failed links ``(u, v)`` with ``u < v``, ascending
        (including links whose endpoints also died).
    components:
        Connected components of the *live* residual network (live
        processors over intact links), each a sorted tuple, ordered by
        smallest member.
    """

    n: int
    horizon: int
    dead: Tuple[int, ...]
    failed_links: Tuple[Tuple[int, int], ...]
    components: Tuple[Tuple[int, ...], ...]

    @property
    def live(self) -> Tuple[int, ...]:
        """Surviving processors, ascending."""
        gone = set(self.dead)
        return tuple(v for v in range(self.n) if v not in gone)

    @property
    def partitioned(self) -> bool:
        """Whether the survivors split into more than one component."""
        return len(self.components) > 1

    @property
    def intact(self) -> bool:
        """Whether nothing permanent happened at all."""
        return not self.dead and not self.failed_links

    def component_of(self, v: int) -> Optional[Tuple[int, ...]]:
        """The component containing live processor ``v`` (None if dead)."""
        for comp in self.components:
            if v in comp:
                return comp
        return None


@dataclass(frozen=True)
class ComponentPlan:
    """One surviving component's degraded gossip plan.

    ``rounds`` is the component schedule length; Theorem 1 degrades to
    ``rounds <= n_i + r_i`` where ``n_i = len(vertices)`` and ``r_i =
    tree_height`` (the residual spanning tree's height).
    """

    vertices: Tuple[int, ...]
    rounds: int
    tree_height: int

    @property
    def degraded_bound(self) -> int:
        """The per-component Theorem 1 guarantee ``n_i + r_i``."""
        return len(self.vertices) + self.tree_height


@dataclass(frozen=True)
class SurvivalResult:
    """Outcome of a :func:`survive` run (coverage is always complete).

    Attributes
    ----------
    diagnosis:
        The residual network the schedule was planned against.
    schedule:
        The appended survival rounds (components merged side by side;
        empty when the faulty run already satisfied the semantics).
    component_plans:
        Per-component plan summaries (only components that needed
        rounds; singletons and already-covered components are omitted).
    final_holds:
        Hold bitsets of every processor after the survival rounds ran.
    labels:
        The original plan's DFS labels (``labels[v]`` is the message id
        vertex ``v`` originated) — what coverage is measured against.
    """

    diagnosis: SurvivalDiagnosis
    schedule: Schedule
    component_plans: Tuple[ComponentPlan, ...]
    final_holds: Tuple[int, ...]
    labels: Tuple[int, ...]

    @property
    def appended_rounds(self) -> int:
        """Survival rounds appended beyond the faulty execution."""
        return self.schedule.total_time

    @property
    def survivor_coverage(self) -> float:
        """Fraction of guaranteed (live processor, message) pairs held."""
        return survivor_coverage(self.diagnosis, self.labels, self.final_holds)


def diagnose_survival(
    graph: "Graph",
    result: "FaultyExecutionResult",
    *,
    model: Optional["FaultModel"] = None,
    horizon: Optional[int] = None,
) -> SurvivalDiagnosis:
    """Read the residual network off a faulty execution.

    ``model`` defaults to the model that produced ``result``;
    ``horizon`` defaults to the execution's total time.  Everything is a
    pure function of the model's seed, so diagnosing twice (or on a
    replayed prefix) gives identical answers.
    """
    if model is None:
        model = result.model
    if horizon is None:
        horizon = result.total_time
    dead = tuple(v for v in range(graph.n) if model.fail_stopped(horizon, v))
    gone = set(dead)
    failed = tuple(
        (u, v) for u, v in graph.edges() if model.link_failed(horizon, u, v)
    )
    failed_set = set(failed)
    # Connected components of the live residual network.
    seen: set = set()
    components: List[Tuple[int, ...]] = []
    for start in range(graph.n):
        if start in gone or start in seen:
            continue
        stack = [start]
        seen.add(start)
        members = []
        while stack:
            u = stack.pop()
            members.append(u)
            for w in graph.neighbors(u):
                if w in gone or w in seen:
                    continue
                key = (u, w) if u < w else (w, u)
                if key in failed_set:
                    continue
                seen.add(w)
                stack.append(w)
        components.append(tuple(sorted(members)))
    return SurvivalDiagnosis(
        n=graph.n,
        horizon=horizon,
        dead=dead,
        failed_links=failed,
        components=tuple(components),
    )


def _guarantee_masks(
    diagnosis: SurvivalDiagnosis, labels: Sequence[int]
) -> Dict[int, int]:
    """Per-live-processor bitmask of the messages survival guarantees.

    A live processor is owed exactly the origin messages of the live
    members of its own component (its own included).
    """
    masks: Dict[int, int] = {}
    for comp in diagnosis.components:
        mask = 0
        for v in comp:
            mask |= 1 << int(labels[v])
        for v in comp:
            masks[v] = mask
    return masks


def survivor_coverage(
    diagnosis: SurvivalDiagnosis, labels: Sequence[int], holds: Sequence[int]
) -> float:
    """Fraction of guaranteed (live processor, message) pairs in ``holds``.

    1.0 means the degraded completion semantics are fully satisfied
    (vacuously so when nobody survived).
    """
    owed = held = 0
    for v, mask in _guarantee_masks(diagnosis, labels).items():
        owed += mask.bit_count()
        held += (int(holds[v]) & mask).bit_count()
    return held / owed if owed else 1.0


def validate_survival(
    diagnosis: SurvivalDiagnosis,
    labels: Sequence[int],
    holds: Sequence[int],
    *,
    before: Optional[Sequence[int]] = None,
) -> None:
    """Strictly check the degraded completion semantics on ``holds``.

    Raises :class:`~repro.exceptions.SurvivorSetError` listing every
    offending ``(processor, message)`` pair when a live processor misses
    a guaranteed message, or when (with ``before`` given) a dead
    processor's hold set grew — survival schedules must never deliver to
    the dead.
    """
    pairs: List[Tuple[int, int]] = []
    for v, mask in sorted(_guarantee_masks(diagnosis, labels).items()):
        missing = mask & ~int(holds[v])
        while missing:
            low = missing & -missing
            pairs.append((v, low.bit_length() - 1))
            missing ^= low
    if pairs:
        raise SurvivorSetError(
            f"{len(pairs)} guaranteed (processor, message) pairs are missing "
            f"after survival: {pairs[:8]}{'...' if len(pairs) > 8 else ''}",
            pairs=pairs,
        )
    if before is not None:
        grown = [
            (v, int(holds[v]) & ~int(before[v]))
            for v in diagnosis.dead
            if int(holds[v]) & ~int(before[v])
        ]
        if grown:
            pairs = [
                (v, b)
                for v, extra in grown
                for b in range(extra.bit_length())
                if extra >> b & 1
            ]
            raise SurvivorSetError(
                f"survival delivered to dead processors: {pairs}",
                pairs=pairs,
            )


def _cross_partition_pairs(
    diagnosis: SurvivalDiagnosis, labels: Sequence[int]
) -> List[Tuple[int, int]]:
    """Every (live processor, live-origin message) pair full gossip loses.

    These are the witnesses a partition makes full coverage impossible:
    each pair names a survivor and a message whose (live) origin sits in
    a different component.
    """
    pairs: List[Tuple[int, int]] = []
    for comp in diagnosis.components:
        for other in diagnosis.components:
            if other is comp:
                continue
            for v in comp:
                pairs.extend((v, int(labels[u])) for u in other)
    pairs.sort()
    return pairs


def survive(
    graph: "Graph",
    plan: "GossipPlan",
    result: "FaultyExecutionResult",
    *,
    model: Optional["FaultModel"] = None,
    allow_partition: bool = True,
    algorithm: Optional[str] = None,
) -> SurvivalResult:
    """Re-plan degraded gossip for the survivors of a faulty run.

    Diagnoses the residual network once, plans fresh gossip per
    surviving component over the residual edges with the fast planner,
    merges the (vertex-disjoint) component schedules round by round, and
    executes them on the fault-free engine from the faulty hold state.
    The returned result always satisfies :func:`validate_survival`.

    Parameters
    ----------
    graph / plan / result:
        The network, the plan whose schedule was executed, and the
        faulty execution to survive (as returned by
        :func:`~repro.core.recovery.execute_plan_with_faults`).
    model:
        Fault model to diagnose with; defaults to ``result.model``.
    allow_partition:
        With ``False``, a residual network split into several components
        raises :class:`~repro.exceptions.PartitionedNetworkError`
        (carrying the offending pairs) instead of degrading — for
        callers that need the *full* gossip guarantee or a typed refusal.
    algorithm:
        Tree-gossiping algorithm for the component plans; defaults to
        the original plan's algorithm.

    Raises
    ------
    SurvivorSetError
        No processor survived.
    PartitionedNetworkError
        Survivors are partitioned and ``allow_partition`` is false.
    """
    from ..networks.graph import Graph as GraphType
    from ..simulator.engine import execute_schedule
    from .gossip import gossip

    if model is None:
        model = result.model
    if result.n_messages != graph.n:
        raise ReproError(
            "survive() needs the standard one-message-per-processor gossip "
            f"instance (n_messages={result.n_messages}, n={graph.n})"
        )
    labels = tuple(int(x) for x in plan.labeled.labels())
    diagnosis = diagnose_survival(graph, result, model=model)

    if not diagnosis.components:
        raise SurvivorSetError(
            f"no survivors: all {graph.n} processors fail-stopped by round "
            f"{diagnosis.horizon}"
        )
    if diagnosis.partitioned and not allow_partition:
        pairs = _cross_partition_pairs(diagnosis, labels)
        raise PartitionedNetworkError(
            f"residual network is partitioned into {len(diagnosis.components)} "
            f"components ({len(diagnosis.dead)} dead processors, "
            f"{len(diagnosis.failed_links)} failed links); full gossip is "
            f"impossible for {len(pairs)} (processor, message) pairs",
            pairs=pairs,
            components=diagnosis.components,
            dead=diagnosis.dead,
        )

    holds = [int(h) for h in result.final_holds]
    masks = _guarantee_masks(diagnosis, labels)
    alg = plan.algorithm if algorithm is None else algorithm

    component_plans: List[ComponentPlan] = []
    per_component_rounds: List[List[Round]] = []
    for comp in diagnosis.components:
        if len(comp) == 1 or all(holds[v] & masks[v] == masks[v] for v in comp):
            continue  # singleton, or the faults never hurt this component
        local_of = {v: i for i, v in enumerate(comp)}
        failed = set(diagnosis.failed_links)
        local_edges = [
            (local_of[u], local_of[v])
            for u, v in graph.edges()
            if u in local_of and v in local_of and (u, v) not in failed
        ]
        sub = GraphType(len(comp), local_edges, name=f"survivors[{comp[0]}..]")
        sub_plan = gossip(sub, algorithm=alg)
        sub_labels = sub_plan.labeled.labels()
        # local DFS label -> original message id of the originating vertex.
        message_of = {
            int(sub_labels[lv]): labels[comp[lv]] for lv in range(len(comp))
        }
        translated: List[Round] = []
        for rnd in sub_plan.schedule:
            translated.append(
                Round(
                    Transmission(
                        sender=comp[tx.sender],
                        message=message_of[tx.message],
                        destinations=frozenset(comp[d] for d in tx.destinations),
                    )
                    for tx in rnd
                )
            )
        per_component_rounds.append(translated)
        component_plans.append(
            ComponentPlan(
                vertices=comp,
                rounds=sub_plan.total_time,
                tree_height=sub_plan.tree.height,
            )
        )

    merged: List[Round] = []
    for t in range(max((len(r) for r in per_component_rounds), default=0)):
        txs = [
            tx
            for rounds in per_component_rounds
            if t < len(rounds)
            for tx in rounds[t]
        ]
        merged.append(Round(txs))
    name = plan.schedule.name
    schedule = Schedule(merged, name=f"{name}+survival" if name else "survival")

    if merged:
        survived: "ExecutionResult" = execute_schedule(
            graph,
            schedule,
            initial_holds=holds,
            n_messages=result.n_messages,
        )
        final_holds = tuple(int(h) for h in survived.final_holds)
    else:
        final_holds = tuple(holds)

    outcome = SurvivalResult(
        diagnosis=diagnosis,
        schedule=schedule,
        component_plans=tuple(component_plans),
        final_holds=final_holds,
        labels=labels,
    )
    validate_survival(diagnosis, labels, final_holds, before=result.final_holds)
    return outcome
