"""Multicast broadcasting (paper Section 2).

Broadcasting one message under the multicasting model is "trivial to
solve": the source multicasts to all neighbours at time 0; afterwards
every processor that just received the message multicasts it to the
neighbours that still lack it, with ties (several candidates wanting to
inform the same processor) broken offline.  Processor ``v`` receives the
message exactly at time ``dist(source, v)``, so the schedule completes in
``ecc(source)`` rounds — optimal, since a message traverses one edge per
round.

We break ties deterministically: a frontier vertex is informed by its
smallest-id informed neighbour (the BFS-tree parent), and each sender
multicasts once to all the frontier vertices assigned to it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set

from ..exceptions import DisconnectedGraphError
from ..networks.bfs import UNREACHED, bfs_tree
from ..networks.graph import Graph
from ..types import Message, Vertex
from .schedule import Round, Schedule, Transmission

__all__ = ["broadcast", "broadcast_time", "telephone_broadcast"]


def broadcast(graph: Graph, source: Vertex, message: Message | None = None) -> Schedule:
    """Schedule broadcasting ``message`` from ``source`` to everyone.

    ``message`` defaults to ``source`` (the paper's convention that
    processor ``v`` originates message ``v``).  The schedule has exactly
    ``eccentricity(source)`` rounds; processor ``v`` receives the message
    at time ``dist(source, v)``.
    """
    msg = source if message is None else message
    dist, parent = bfs_tree(graph, source)
    if (dist == UNREACHED).any():
        raise DisconnectedGraphError("cannot broadcast over a disconnected graph")
    horizon = int(dist.max())
    rounds: List[Round] = []
    for t in range(horizon):
        # Vertices at distance t+1 are informed this round, each by its
        # BFS parent; group the frontier by sender into multicasts.
        by_sender: Dict[int, Set[int]] = defaultdict(set)
        for v in range(graph.n):
            if dist[v] == t + 1:
                by_sender[int(parent[v])].add(v)
        rounds.append(
            Round(
                Transmission(sender=s, message=msg, destinations=frozenset(dests))
                for s, dests in by_sender.items()
            )
        )
    return Schedule(rounds, name=f"broadcast-from-{source}")


def broadcast_time(graph: Graph, source: Vertex) -> int:
    """The optimal broadcast time from ``source``: its eccentricity."""
    dist = bfs_tree(graph, source)[0]
    if (dist == UNREACHED).any():
        raise DisconnectedGraphError("cannot broadcast over a disconnected graph")
    return int(dist.max())


def telephone_broadcast(
    graph: Graph, source: Vertex, message: Message | None = None
) -> Schedule:
    """Greedy broadcasting under the telephone (unicast) model.

    The classical doubling strategy: each round, every informed processor
    calls one uninformed neighbour (earliest-informed processors choose
    first; each picks its smallest-id unclaimed uninformed neighbour).
    At best the informed set doubles, so the schedule needs at least
    ``max(ecc(source), ceil(log2 n))`` rounds — in contrast with the
    multicast model's exact ``ecc(source)`` (:func:`broadcast`).  On a
    star the gap is extreme: 1 round multicast vs ``n - 1`` telephone.
    """
    msg = source if message is None else message
    dist = bfs_tree(graph, source)[0]
    if (dist == UNREACHED).any():
        raise DisconnectedGraphError("cannot broadcast over a disconnected graph")
    informed_order: List[int] = [int(source)]
    informed: Set[int] = {int(source)}
    rounds: List[Round] = []
    while len(informed) < graph.n:
        claimed: Set[int] = set()
        txs = []
        for caller in informed_order:
            target = next(
                (
                    u
                    for u in graph.neighbors(caller)
                    if u not in informed and u not in claimed
                ),
                None,
            )
            if target is not None:
                claimed.add(target)
                txs.append(
                    Transmission(
                        sender=caller, message=msg, destinations=frozenset({target})
                    )
                )
        if not txs:  # pragma: no cover - impossible on connected graphs
            raise DisconnectedGraphError("broadcast stalled; graph disconnected?")
        rounds.append(Round(txs))
        informed_order.extend(sorted(claimed))
        informed |= claimed
    return Schedule(rounds, name=f"telephone-broadcast-from-{source}")
