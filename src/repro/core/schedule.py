"""Communication schedules — the paper's central object (Section 1).

A *communication round* ``C`` is a set of tuples ``(m, l, D)``: message
``m`` is multicast from processor ``P_l`` to the processors in ``D``.  A
round must satisfy the network rules:

1. every pair of ``D`` sets in ``C`` is disjoint (each processor receives
   at most one message per round), and
2. all sender indices ``l`` are distinct (each processor sends at most one
   message per round).

A *communication schedule* is a sequence of rounds.  Round ``t`` is sent
at time ``t`` and received at time ``t + 1``; the *total communication
time* is the number of rounds (equivalently, the latest time at which a
communication happens).

The classes here enforce the two structural rules at construction time;
the *semantic* rules (the sender actually holds the message, every
destination is an adjacent processor) depend on the network and on the
execution history and are checked by :mod:`repro.simulator.validator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..exceptions import ScheduleConflictError, ScheduleError
from ..types import Message, Time, Vertex, VertexSet

__all__ = ["Transmission", "Round", "Schedule", "ScheduleBuilder", "merge_schedules"]


@dataclass(frozen=True)
class Transmission:
    """One multicast: ``message`` goes from ``sender`` to ``destinations``.

    ``destinations`` must be non-empty and must not contain the sender
    (the sender keeps every message it ever held; self-delivery is
    meaningless in the model).

    Ordering compares ``(sender, message)`` only: within one round
    senders are unique, so that is a total order — comparing the
    destination frozensets would be a subset *partial* order, unsafe for
    sorting.  Equality still covers all three fields.
    """

    sender: Vertex
    message: Message
    destinations: FrozenSet[Vertex]

    def __lt__(self, other: "Transmission") -> bool:
        if not isinstance(other, Transmission):
            return NotImplemented
        return (self.sender, self.message) < (other.sender, other.message)

    def __post_init__(self) -> None:
        if not isinstance(self.destinations, frozenset):
            object.__setattr__(self, "destinations", frozenset(self.destinations))
        if not self.destinations:
            raise ScheduleError(
                f"transmission of message {self.message} from {self.sender} "
                "has an empty destination set"
            )
        if self.sender in self.destinations:
            raise ScheduleError(
                f"processor {self.sender} cannot send message {self.message} to itself"
            )

    def fan_out(self) -> int:
        """Number of simultaneous receivers (1 = unicast)."""
        return len(self.destinations)

    def __repr__(self) -> str:
        dests = ",".join(map(str, sorted(self.destinations)))
        return f"({self.message}, {self.sender} -> {{{dests}}})"


class Round:
    """An immutable communication round: a conflict-free set of transmissions.

    Enforces the two structural rules of the model at construction and
    offers O(1) lookup of "who sends what" and "who receives what".
    """

    __slots__ = ("_transmissions", "_by_sender", "_by_receiver")

    def __init__(self, transmissions: Iterable[Transmission] = ()) -> None:
        txs = tuple(sorted(transmissions, key=lambda tx: (tx.sender, tx.message)))
        by_sender: Dict[int, Transmission] = {}
        by_receiver: Dict[int, Transmission] = {}
        for tx in txs:
            if tx.sender in by_sender:
                raise ScheduleConflictError(
                    f"processor {tx.sender} sends two messages in one round: "
                    f"{by_sender[tx.sender].message} and {tx.message}"
                )
            by_sender[tx.sender] = tx
            for d in tx.destinations:
                if d in by_receiver:
                    raise ScheduleConflictError(
                        f"processor {d} receives two messages in one round: "
                        f"{by_receiver[d].message} and {tx.message}"
                    )
                by_receiver[d] = tx
        self._transmissions = txs
        self._by_sender = by_sender
        self._by_receiver = by_receiver

    @property
    def transmissions(self) -> Tuple[Transmission, ...]:
        """All transmissions, sorted by (sender, message)."""
        return self._transmissions

    def sent_by(self, v: Vertex) -> Optional[Transmission]:
        """The transmission ``v`` performs this round, if any."""
        return self._by_sender.get(v)

    def received_by(self, v: Vertex) -> Optional[Transmission]:
        """The transmission delivering a message to ``v`` this round, if any."""
        return self._by_receiver.get(v)

    def senders(self) -> FrozenSet[int]:
        """All processors that send this round."""
        return frozenset(self._by_sender)

    def receivers(self) -> FrozenSet[int]:
        """All processors that receive this round."""
        return frozenset(self._by_receiver)

    def message_count(self) -> int:
        """Number of distinct multicasts this round."""
        return len(self._transmissions)

    def delivery_count(self) -> int:
        """Total point-to-point deliveries (sum of fan-outs)."""
        return sum(tx.fan_out() for tx in self._transmissions)

    def is_empty(self) -> bool:
        """Whether no communication happens this round."""
        return not self._transmissions

    def __iter__(self) -> Iterator[Transmission]:
        return iter(self._transmissions)

    def __len__(self) -> int:
        return len(self._transmissions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Round):
            return NotImplemented
        return self._transmissions == other._transmissions

    def __hash__(self) -> int:
        return hash(self._transmissions)

    def __repr__(self) -> str:
        return f"Round({list(self._transmissions)!r})"


class Schedule:
    """An immutable sequence of rounds.

    Round ``t`` (0-based) is *sent* at time ``t`` and *received* at time
    ``t + 1``.  Trailing empty rounds are trimmed so
    :attr:`total_time` matches the paper's "latest time there is a
    communication".
    """

    __slots__ = ("_rounds", "_name")

    def __init__(self, rounds: Iterable[Round], name: str = "") -> None:
        rnds = list(rounds)
        while rnds and rnds[-1].is_empty():
            rnds.pop()
        self._rounds: Tuple[Round, ...] = tuple(rnds)
        self._name = name

    @property
    def name(self) -> str:
        """Name of the producing algorithm (used in reports)."""
        return self._name

    @property
    def rounds(self) -> Tuple[Round, ...]:
        """All rounds, index = send time."""
        return self._rounds

    @property
    def total_time(self) -> int:
        """The paper's total communication time (number of rounds).

        The last round is sent at ``total_time - 1`` and received at
        ``total_time``.
        """
        return len(self._rounds)

    def round_at(self, t: Time) -> Round:
        """The round sent at time ``t`` (empty if past the end)."""
        if 0 <= t < len(self._rounds):
            return self._rounds[t]
        return _EMPTY_ROUND

    def transmissions_at(self, t: Time) -> Tuple[Transmission, ...]:
        """Transmissions sent at time ``t``."""
        return self.round_at(t).transmissions

    def total_messages(self) -> int:
        """Total multicasts across all rounds."""
        return sum(len(r) for r in self._rounds)

    def total_deliveries(self) -> int:
        """Total point-to-point deliveries across all rounds."""
        return sum(r.delivery_count() for r in self._rounds)

    def max_fan_out(self) -> int:
        """Largest multicast fan-out anywhere in the schedule (0 if empty)."""
        return max(
            (tx.fan_out() for r in self._rounds for tx in r), default=0
        )

    def with_name(self, name: str) -> "Schedule":
        """Same schedule carrying a different name."""
        return Schedule(self._rounds, name=name)

    def __iter__(self) -> Iterator[Round]:
        return iter(self._rounds)

    def __len__(self) -> int:
        return len(self._rounds)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._rounds == other._rounds

    def __hash__(self) -> int:
        return hash(self._rounds)

    def __repr__(self) -> str:
        label = f" name={self._name!r}" if self._name else ""
        return f"Schedule(total_time={self.total_time}{label})"


_EMPTY_ROUND = Round(())


class ScheduleBuilder:
    """Accumulates ``send(time, sender, message, destinations)`` events.

    The builder is how the Propagate-Up and Propagate-Down schedules are
    *overlapped* into the ConcurrentUpDown schedule: when the same sender
    sends the same message at the same time in both (steps (U4) and (D3)
    deliberately coincide — Theorem 1), the destination sets are merged
    into a single multicast.  A same-time same-sender event with a
    *different* message raises :class:`ScheduleConflictError` immediately,
    which is exactly the no-interference condition the theorem proves.
    """

    __slots__ = ("_events",)

    def __init__(self) -> None:
        # time -> sender -> (message, set of destinations)
        self._events: Dict[int, Dict[int, Tuple[int, set]]] = {}

    def send(
        self, time: Time, sender: Vertex, message: Message, destinations: VertexSet
    ) -> "ScheduleBuilder":
        """Record that ``sender`` multicasts ``message`` at ``time``.

        Merges with an existing same-time event of the same sender when the
        message matches; raises otherwise.
        """
        if time < 0:
            raise ScheduleError(f"negative send time {time}")
        dests = set(int(d) for d in destinations)
        if not dests:
            return self  # nothing to do; empty multicasts are dropped
        at_time = self._events.setdefault(int(time), {})
        existing = at_time.get(int(sender))
        if existing is None:
            at_time[int(sender)] = (int(message), dests)
        else:
            prev_message, prev_dests = existing
            if prev_message != int(message):
                raise ScheduleConflictError(
                    f"processor {sender} would send both message {prev_message} "
                    f"and message {message} at time {time}"
                )
            prev_dests.update(dests)
        return self

    def merge(self, other: "ScheduleBuilder") -> "ScheduleBuilder":
        """Overlap all events of ``other`` into this builder."""
        for time, at_time in other._events.items():
            for sender, (message, dests) in at_time.items():
                self.send(time, sender, message, dests)
        return self

    def build(self, name: str = "") -> Schedule:
        """Freeze into a :class:`Schedule`, validating every round."""
        if not self._events:
            return Schedule((), name=name)
        horizon = max(self._events) + 1
        rounds: List[Round] = []
        for t in range(horizon):
            at_time = self._events.get(t, {})
            rounds.append(
                Round(
                    Transmission(sender=s, message=m, destinations=frozenset(d))
                    for s, (m, d) in at_time.items()
                )
            )
        return Schedule(rounds, name=name)

    @staticmethod
    def from_schedule(schedule: Schedule) -> "ScheduleBuilder":
        """Builder pre-loaded with every event of an existing schedule."""
        builder = ScheduleBuilder()
        for t, rnd in enumerate(schedule):
            for tx in rnd:
                builder.send(t, tx.sender, tx.message, tx.destinations)
        return builder


def merge_schedules(first: Schedule, second: Schedule, name: str = "") -> Schedule:
    """Overlap two schedules into one (the ConcurrentUpDown combination).

    Raises :class:`ScheduleConflictError` when the overlap breaks a model
    rule — by Theorem 1 this never happens for the Propagate-Up /
    Propagate-Down pair.
    """
    builder = ScheduleBuilder.from_schedule(first)
    builder.merge(ScheduleBuilder.from_schedule(second))
    return builder.build(name=name)
