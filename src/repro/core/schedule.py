"""Communication schedules — the paper's central object (Section 1).

A *communication round* ``C`` is a set of tuples ``(m, l, D)``: message
``m`` is multicast from processor ``P_l`` to the processors in ``D``.  A
round must satisfy the network rules:

1. every pair of ``D`` sets in ``C`` is disjoint (each processor receives
   at most one message per round), and
2. all sender indices ``l`` are distinct (each processor sends at most one
   message per round).

A *communication schedule* is a sequence of rounds.  Round ``t`` is sent
at time ``t`` and received at time ``t + 1``; the *total communication
time* is the number of rounds (equivalently, the latest time at which a
communication happens).

Two representations live here:

* :class:`ArraySchedule` — the **canonical in-memory form**: parallel
  ``round`` / ``sender`` / ``message`` numpy columns plus a packed
  destination bitmask matrix, one row per multicast.  Everything on the
  hot path (the ConcurrentUpDown construction, the simulator's array
  engine, serialisation, cache weight accounting) works on this form
  directly.
* :class:`Schedule` / :class:`Round` / :class:`Transmission` — the
  object view.  A ``Schedule`` built from arrays is a **lazy facade**:
  the per-round ``Transmission`` tuples are only materialised when a
  caller actually iterates them, so array-native consumers never pay
  for objects they do not touch.

The classes enforce the two structural rules at construction time
(vectorised for the array form, per-object for the facade); the
*semantic* rules (the sender actually holds the message, every
destination is an adjacent processor) depend on the network and on the
execution history and are checked by :mod:`repro.simulator.validator`
and :mod:`repro.lint`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ScheduleConflictError, ScheduleError
from ..types import Message, Time, Vertex, VertexSet

__all__ = [
    "Transmission",
    "Round",
    "Schedule",
    "ArraySchedule",
    "ScheduleBuilder",
    "merge_schedules",
]

#: Ids this large would make the packed destination matrix absurd; the
#: builder falls back to the object representation beyond it.
_MAX_PACKED_ID = 1 << 22


def _mask_width(n: int) -> int:
    """Number of uint64 words needed for an ``n``-bit destination mask."""
    return max(1, (int(n) + 63) >> 6)


def _bit_of(ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-id (word index, single-bit uint64 mask) pair."""
    word = ids >> 6
    bit = np.left_shift(np.uint64(1), (ids & 63).astype(np.uint64))
    return word, bit


def _popcounts(masks: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a packed (rows, words) uint64 matrix."""
    return np.bitwise_count(masks).sum(axis=1, dtype=np.int64)


@dataclass(frozen=True)
class Transmission:
    """One multicast: ``message`` goes from ``sender`` to ``destinations``.

    ``destinations`` must be non-empty and must not contain the sender
    (the sender keeps every message it ever held; self-delivery is
    meaningless in the model).

    Ordering compares ``(sender, message)`` only: within one round
    senders are unique, so that is a total order — comparing the
    destination frozensets would be a subset *partial* order, unsafe for
    sorting.  Equality still covers all three fields.
    """

    sender: Vertex
    message: Message
    destinations: FrozenSet[Vertex]

    def __lt__(self, other: "Transmission") -> bool:
        if not isinstance(other, Transmission):
            return NotImplemented
        return (self.sender, self.message) < (other.sender, other.message)

    def __post_init__(self) -> None:
        if not isinstance(self.destinations, frozenset):
            object.__setattr__(self, "destinations", frozenset(self.destinations))
        if not self.destinations:
            raise ScheduleError(
                f"transmission of message {self.message} from {self.sender} "
                "has an empty destination set"
            )
        if self.sender in self.destinations:
            raise ScheduleError(
                f"processor {self.sender} cannot send message {self.message} to itself"
            )

    def fan_out(self) -> int:
        """Number of simultaneous receivers (1 = unicast)."""
        return len(self.destinations)

    def __repr__(self) -> str:
        dests = ",".join(map(str, sorted(self.destinations)))
        return f"({self.message}, {self.sender} -> {{{dests}}})"


class Round:
    """An immutable communication round: a conflict-free set of transmissions.

    Enforces the two structural rules of the model at construction and
    offers O(1) lookup of "who sends what" and "who receives what".
    """

    __slots__ = ("_transmissions", "_by_sender", "_by_receiver")

    def __init__(self, transmissions: Iterable[Transmission] = ()) -> None:
        txs = tuple(sorted(transmissions, key=lambda tx: (tx.sender, tx.message)))
        by_sender: Dict[int, Transmission] = {}
        by_receiver: Dict[int, Transmission] = {}
        for tx in txs:
            if tx.sender in by_sender:
                raise ScheduleConflictError(
                    f"processor {tx.sender} sends two messages in one round: "
                    f"{by_sender[tx.sender].message} and {tx.message}"
                )
            by_sender[tx.sender] = tx
            for d in tx.destinations:
                if d in by_receiver:
                    raise ScheduleConflictError(
                        f"processor {d} receives two messages in one round: "
                        f"{by_receiver[d].message} and {tx.message}"
                    )
                by_receiver[d] = tx
        self._transmissions = txs
        self._by_sender = by_sender
        self._by_receiver = by_receiver

    @property
    def transmissions(self) -> Tuple[Transmission, ...]:
        """All transmissions, sorted by (sender, message)."""
        return self._transmissions

    def sent_by(self, v: Vertex) -> Optional[Transmission]:
        """The transmission ``v`` performs this round, if any."""
        return self._by_sender.get(v)

    def received_by(self, v: Vertex) -> Optional[Transmission]:
        """The transmission delivering a message to ``v`` this round, if any."""
        return self._by_receiver.get(v)

    def senders(self) -> FrozenSet[int]:
        """All processors that send this round."""
        return frozenset(self._by_sender)

    def receivers(self) -> FrozenSet[int]:
        """All processors that receive this round."""
        return frozenset(self._by_receiver)

    def message_count(self) -> int:
        """Number of distinct multicasts this round."""
        return len(self._transmissions)

    def delivery_count(self) -> int:
        """Total point-to-point deliveries (sum of fan-outs)."""
        return sum(tx.fan_out() for tx in self._transmissions)

    def is_empty(self) -> bool:
        """Whether no communication happens this round."""
        return not self._transmissions

    def __iter__(self) -> Iterator[Transmission]:
        return iter(self._transmissions)

    def __len__(self) -> int:
        return len(self._transmissions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Round):
            return NotImplemented
        return self._transmissions == other._transmissions

    def __hash__(self) -> int:
        return hash(self._transmissions)

    def __repr__(self) -> str:
        return f"Round({list(self._transmissions)!r})"


class ArraySchedule:
    """The canonical array form of a schedule: one row per multicast.

    Columns (parallel arrays, one entry per transmission, sorted by
    ``(round, sender)`` with senders unique within a round):

    ============  =========  =============================================
    column        dtype      meaning
    ============  =========  =============================================
    ``round``     int32      send time of the multicast
    ``sender``    int32      sending processor
    ``message``   int32      message id (a DFS label for tree schedules)
    ``dest_mask`` uint64     packed destination bitset, shape ``(E, W)``
                             with ``W = ceil(n / 64)``; bit ``d`` of row
                             ``e`` (word ``d >> 6``, bit ``d & 63``,
                             little-endian within the row) means
                             processor ``d`` receives transmission ``e``
    ============  =========  =============================================

    ``n`` is the number of processors (fixes the mask width) and
    ``n_messages`` the number of distinct message ids.  The structural
    rules of Section 1 are enforced vectorised at construction; error
    paths materialise the offending :class:`Round` so the exception type
    *and text* match the object view exactly.
    """

    __slots__ = (
        "n",
        "n_messages",
        "name",
        "round",
        "sender",
        "message",
        "_dest_mask",
        "_mask_builder",
        "_round_ptr",
        "_fan_outs",
    )

    def __init__(
        self,
        round: np.ndarray,
        sender: np.ndarray,
        message: np.ndarray,
        dest_mask: Optional[np.ndarray],
        *,
        n: int,
        n_messages: Optional[int] = None,
        name: str = "",
        validate: bool = True,
        mask_builder=None,
    ) -> None:
        self.n = int(n)
        self.n_messages = self.n if n_messages is None else int(n_messages)
        self.name = name
        self.round = np.ascontiguousarray(round, dtype=np.int32)
        self.sender = np.ascontiguousarray(sender, dtype=np.int32)
        self.message = np.ascontiguousarray(message, dtype=np.int32)
        if dest_mask is None:
            if mask_builder is None:
                raise ScheduleError(
                    "ArraySchedule needs a dest_mask matrix or a mask_builder"
                )
            self._dest_mask: Optional[np.ndarray] = None
            self._mask_builder = mask_builder
        else:
            self._dest_mask = self._check_mask_shape(dest_mask)
            self._mask_builder = None
        self._round_ptr: Optional[np.ndarray] = None
        self._fan_outs: Optional[np.ndarray] = None
        if validate:
            self._validate()

    def _check_mask_shape(self, dest_mask: np.ndarray) -> np.ndarray:
        masks = np.ascontiguousarray(dest_mask, dtype=np.uint64)
        if masks.ndim != 2 or masks.shape != (
            len(self.round),
            _mask_width(self.n),
        ):
            raise ScheduleError(
                f"dest_mask has shape {masks.shape}; expected "
                f"({len(self.round)}, {_mask_width(self.n)}) for n={self.n}"
            )
        return masks

    @property
    def dest_mask(self) -> np.ndarray:
        """Packed ``(E, W)`` destination matrix.

        Usually stored eagerly; schedules built by the array pipeline
        (:meth:`_from_canonical` with a ``mask_builder``) materialise it
        here on first access — their Rule 1 check already ran on the
        flat delivery stream, and the mask-level checks re-run at
        materialisation as defence in depth.
        """
        if self._dest_mask is None:
            self._dest_mask = self._check_mask_shape(self._mask_builder())
            self._mask_builder = None
            self._validate_masks()
        return self._dest_mask

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls,
        times: np.ndarray,
        senders: np.ndarray,
        messages: np.ndarray,
        masks: np.ndarray,
        *,
        n: int,
        n_messages: Optional[int] = None,
        name: str = "",
    ) -> "ArraySchedule":
        """Canonicalise raw send events into an :class:`ArraySchedule`.

        This is the array analogue of :class:`ScheduleBuilder`: events
        with empty destination sets are dropped, same-time same-sender
        events carrying the *same* message fuse into one multicast
        (their destination masks are OR-ed — the Theorem 1 overlap), and
        a same-time same-sender pair with *different* messages raises
        :class:`~repro.exceptions.ScheduleConflictError`, machine-checking
        the no-interference property on every construction.
        """
        times = np.asarray(times, dtype=np.int64)
        senders = np.asarray(senders, dtype=np.int64)
        messages = np.asarray(messages, dtype=np.int64)
        masks = np.asarray(masks, dtype=np.uint64)
        if len(times) == 0:
            return cls._empty(n, n_messages, name)
        keep = _popcounts(masks) > 0
        if not keep.all():
            times, senders, messages, masks = (
                times[keep], senders[keep], messages[keep], masks[keep],
            )
        if len(times) == 0:
            return cls._empty(n, n_messages, name)

        order = np.lexsort((messages, senders, times))
        times, senders, messages, masks = (
            times[order], senders[order], messages[order], masks[order],
        )
        new_group = np.empty(len(times), dtype=bool)
        new_group[0] = True
        np.logical_or(
            np.diff(times) != 0, np.diff(senders) != 0, out=new_group[1:]
        )
        starts = np.flatnonzero(new_group)
        if len(starts) != len(times):
            # At least one (time, sender) pair carries several events.
            ends = np.append(starts[1:], len(times)) - 1
            bad = messages[starts] != messages[ends]
            if bad.any():
                g = int(np.flatnonzero(bad)[0])
                raise ScheduleConflictError(
                    f"processor {int(senders[starts[g]])} would send both "
                    f"message {int(messages[starts[g]])} and message "
                    f"{int(messages[ends[g]])} at time {int(times[starts[g]])}"
                )
            masks = np.bitwise_or.reduceat(masks, starts, axis=0)
            times, senders, messages = times[starts], senders[starts], messages[starts]
        return cls(
            times, senders, messages, masks,
            n=n, n_messages=n_messages, name=name,
        )

    @classmethod
    def from_schedule(
        cls,
        schedule: "Schedule",
        *,
        n: Optional[int] = None,
        n_messages: Optional[int] = None,
    ) -> "ArraySchedule":
        """Pack an object-view schedule into the canonical array form.

        ``n`` defaults to the smallest processor count covering every
        sender and destination in the schedule.
        """
        times: List[int] = []
        senders: List[int] = []
        messages: List[int] = []
        dests: List[Tuple[int, ...]] = []
        for t, rnd in enumerate(schedule.rounds):
            for tx in rnd:
                times.append(t)
                senders.append(int(tx.sender))
                messages.append(int(tx.message))
                dests.append(tuple(tx.destinations))
        max_id = -1
        for s, ds in zip(senders, dests):
            top = max(ds) if ds else -1
            m = s if s > top else top
            if m > max_id:
                max_id = m
        if any(d < 0 for ds in dests for d in ds) or min(senders, default=0) < 0:
            raise ScheduleError(
                "cannot pack a schedule with negative processor ids into arrays"
            )
        if n is None:
            n = max_id + 1
        elif max_id >= n:
            raise ScheduleError(
                f"schedule references processor {max_id} but n={n} was given"
            )
        masks = _masks_from_dest_lists(dests, int(n))
        return cls.from_events(
            np.asarray(times, dtype=np.int64),
            np.asarray(senders, dtype=np.int64),
            np.asarray(messages, dtype=np.int64),
            masks,
            n=int(n),
            n_messages=n_messages,
            name=schedule.name,
        )

    @classmethod
    def _from_canonical(
        cls,
        round: np.ndarray,
        sender: np.ndarray,
        message: np.ndarray,
        dest_mask: Optional[np.ndarray],
        fan_outs: np.ndarray,
        *,
        n: int,
        n_messages: Optional[int] = None,
        name: str = "",
        mask_builder=None,
    ) -> "ArraySchedule":
        """Construct from already-canonical rows with known fan-outs.

        ``fan_outs`` must equal the per-row mask popcounts.  With an
        eager ``dest_mask`` the full structural validation runs (and
        cross-checks the claimed fan-outs against the mask unions).
        With ``dest_mask=None`` plus a ``mask_builder`` callable the
        packed matrix materialises lazily on first access: the caller
        vouches that Rule 1 was checked on its flat delivery stream
        (the ConcurrentUpDown assembly counts receivers per round
        directly), only the column-level checks run here, and the
        mask-level checks re-run whenever the matrix materialises.
        """
        self = cls(
            round, sender, message, dest_mask,
            n=n, n_messages=n_messages, name=name, validate=False,
            mask_builder=mask_builder,
        )
        self._fan_outs = np.ascontiguousarray(fan_outs, dtype=np.int64)
        if self._dest_mask is None:
            self._validate_columns()
        else:
            self._validate()
        return self

    @classmethod
    def _empty(cls, n: int, n_messages: Optional[int], name: str) -> "ArraySchedule":
        zero = np.zeros(0, dtype=np.int32)
        return cls(
            zero, zero, zero,
            np.zeros((0, _mask_width(n)), dtype=np.uint64),
            n=n, n_messages=n_messages, name=name, validate=False,
        )

    # ------------------------------------------------------------------
    # Structural validation (vectorised; object fallback for error text)
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        self._validate_columns()
        if len(self.round):
            self._validate_masks()

    def _validate_columns(self) -> None:
        """Checks that need only the flat columns (not the mask matrix)."""
        rnd, snd, msg = self.round, self.sender, self.message
        if len(rnd) == 0:
            return
        if (
            np.any(rnd < 0)
            or np.any(snd < 0)
            or np.any(snd >= self.n)
        ):
            raise ScheduleError(
                "array schedule has a negative round or an out-of-range sender"
            )
        key_sorted = np.all(
            (rnd[:-1] < rnd[1:])
            | ((rnd[:-1] == rnd[1:]) & (snd[:-1] < snd[1:]))
        )
        if not key_sorted:
            raise ScheduleError(
                "array schedule rows must be strictly sorted by (round, sender); "
                "build via ArraySchedule.from_events()"
            )
        pops = self.fan_outs()
        if np.any(pops == 0):
            e = int(np.flatnonzero(pops == 0)[0])
            raise ScheduleError(
                f"transmission of message {int(msg[e])} from {int(snd[e])} "
                "has an empty destination set"
            )

    def _validate_masks(self) -> None:
        """Mask-level checks: no self-sends, Rule 1 receiver disjointness."""
        rnd, snd, msg = self.round, self.sender, self.message
        masks = self.dest_mask
        pops = self.fan_outs()
        word, bit = _bit_of(snd.astype(np.int64))
        self_send = (masks[np.arange(len(snd)), word] & bit) != 0
        if self_send.any():
            e = int(np.flatnonzero(self_send)[0])
            raise ScheduleError(
                f"processor {int(snd[e])} cannot send message {int(msg[e])} to itself"
            )
        # Rule 1 — each processor receives at most one message per round:
        # within every round the destination masks must be pairwise
        # disjoint, i.e. popcount(OR) == sum(popcounts).
        ptr = self.round_ptr
        starts = ptr[:-1][np.diff(ptr) > 0]
        if len(starts):
            union = np.bitwise_or.reduceat(masks, starts, axis=0)
            union_pop = _popcounts(union)
            sum_pop = np.add.reduceat(pops, starts)
            clash = union_pop != sum_pop
            if clash.any():
                g = int(np.flatnonzero(clash)[0])
                t = int(rnd[starts[g]])
                # Materialise the offending round: Round() raises the
                # historical ScheduleConflictError with the exact text.
                Round(self._transmissions_of_slice(ptr[t], ptr[t + 1]))
                raise ScheduleConflictError(  # pragma: no cover — Round raises
                    f"round {t} has a receiver collision"
                )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def total_time(self) -> int:
        """The paper's total communication time (number of rounds)."""
        return int(self.round[-1]) + 1 if len(self.round) else 0

    @property
    def n_transmissions(self) -> int:
        """Total multicasts across all rounds."""
        return len(self.round)

    @property
    def round_ptr(self) -> np.ndarray:
        """CSR offsets: transmissions of round ``t`` are rows ``ptr[t]:ptr[t+1]``."""
        if self._round_ptr is None:
            self._round_ptr = np.searchsorted(
                self.round, np.arange(self.total_time + 1), side="left"
            ).astype(np.int64)
        return self._round_ptr

    def fan_outs(self) -> np.ndarray:
        """Per-transmission receiver counts (popcount of each mask row)."""
        if self._fan_outs is None:
            self._fan_outs = _popcounts(self.dest_mask)
        return self._fan_outs

    def delivery_count(self) -> int:
        """Total point-to-point deliveries across all rounds."""
        return int(self.fan_outs().sum())

    def max_fan_out(self) -> int:
        """Largest multicast fan-out anywhere in the schedule (0 if empty)."""
        return int(self.fan_outs().max()) if len(self.round) else 0

    @property
    def nbytes(self) -> int:
        """Memory footprint of the canonical arrays (cache weight unit).

        The destination matrix contributes its full ``E x W x 8`` bytes
        whether or not it has materialised yet, so the value is a stable
        property of the schedule, not of access history.
        """
        return (
            self.round.nbytes
            + self.sender.nbytes
            + self.message.nbytes
            + len(self.round) * _mask_width(self.n) * 8
        )

    def destination_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """Flattened ``(transmission row, destination)`` delivery pairs.

        Rows appear in transmission order, destinations ascending — the
        vectorised expansion of every multicast into unicasts.
        """
        if len(self.round) == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        bits = np.unpackbits(
            self.dest_mask.view(np.uint8), axis=1, bitorder="little"
        )
        row, dest = np.nonzero(bits)
        return row.astype(np.int64), dest.astype(np.int64)

    def widen(self, n: int, n_messages: Optional[int] = None) -> "ArraySchedule":
        """The same schedule on a larger processor universe.

        Pads the destination matrix to ``ceil(n / 64)`` words; contents
        are untouched so no re-validation is needed.
        """
        n = int(n)
        if n < self.n:
            raise ScheduleError(f"cannot narrow an n={self.n} schedule to n={n}")
        n_msgs = self.n_messages if n_messages is None else int(n_messages)
        if n == self.n and n_msgs == self.n_messages:
            return self
        w_old, w_new = _mask_width(self.n), _mask_width(n)
        masks = self.dest_mask
        if w_new > w_old:
            masks = np.hstack(
                [masks, np.zeros((len(self.round), w_new - w_old), dtype=np.uint64)]
            )
        return ArraySchedule(
            self.round, self.sender, self.message, masks,
            n=n, n_messages=n_msgs, name=self.name, validate=False,
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_npz(self, path) -> None:
        """Serialise the canonical arrays to a ``.npz`` file."""
        np.savez(
            path,
            round=self.round,
            sender=self.sender,
            message=self.message,
            dest_mask=self.dest_mask,
            meta=np.array([self.n, self.n_messages], dtype=np.int64),
            name=np.array(self.name),
        )

    @classmethod
    def from_npz(cls, path) -> "ArraySchedule":
        """Load (and re-validate) an :meth:`to_npz` artefact."""
        with np.load(path, allow_pickle=False) as data:
            n, n_messages = (int(x) for x in data["meta"])
            return cls(
                data["round"], data["sender"], data["message"], data["dest_mask"],
                n=n, n_messages=n_messages, name=str(data["name"]),
            )

    # ------------------------------------------------------------------
    # Object-view materialisation
    # ------------------------------------------------------------------
    def _transmissions_of_slice(self, lo: int, hi: int) -> List[Transmission]:
        """Transmission objects for rows ``lo:hi`` (one round's worth)."""
        out: List[Transmission] = []
        senders = self.sender[lo:hi].tolist()
        messages = self.message[lo:hi].tolist()
        for e, (s, m) in enumerate(zip(senders, messages)):
            bits = np.unpackbits(
                self.dest_mask[lo + e].view(np.uint8), bitorder="little"
            )
            out.append(
                Transmission(
                    sender=s, message=m,
                    destinations=frozenset(np.flatnonzero(bits).tolist()),
                )
            )
        return out

    def build_rounds(self) -> Tuple[Round, ...]:
        """Materialise the full object view (one Round per send time)."""
        total = self.total_time
        if total == 0:
            return ()
        row, dest = self.destination_pairs()
        counts = self.fan_outs()
        bounds = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        senders = self.sender.tolist()
        messages = self.message.tolist()
        dest_list = dest.tolist()
        ptr = self.round_ptr.tolist()
        rounds: List[Round] = []
        for t in range(total):
            txs = [
                Transmission(
                    sender=senders[e],
                    message=messages[e],
                    destinations=frozenset(dest_list[bounds[e] : bounds[e + 1]]),
                )
                for e in range(ptr[t], ptr[t + 1])
            ]
            rounds.append(Round(txs))
        return tuple(rounds)

    def to_schedule(self, name: Optional[str] = None) -> "Schedule":
        """The lazy object-view facade over these arrays."""
        return Schedule.from_arrays(self, name=name)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArraySchedule):
            return NotImplemented
        return (
            self.n == other.n
            and self.n_messages == other.n_messages
            and np.array_equal(self.round, other.round)
            and np.array_equal(self.sender, other.sender)
            and np.array_equal(self.message, other.message)
            and np.array_equal(self.dest_mask, other.dest_mask)
        )

    def __len__(self) -> int:
        return self.total_time

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return (
            f"ArraySchedule(n={self.n}, total_time={self.total_time}, "
            f"transmissions={self.n_transmissions}{label})"
        )


def _masks_from_dest_lists(
    dests: Sequence[Sequence[int]], n: int
) -> np.ndarray:
    """Packed (E, W) destination matrix from per-event destination lists."""
    masks = np.zeros((len(dests), _mask_width(n)), dtype=np.uint64)
    counts = np.fromiter((len(d) for d in dests), dtype=np.int64, count=len(dests))
    total = int(counts.sum())
    if total:
        flat = np.fromiter(
            (d for ds in dests for d in ds), dtype=np.int64, count=total
        )
        rows = np.repeat(np.arange(len(dests)), counts)
        word, bit = _bit_of(flat)
        np.bitwise_or.at(masks, (rows, word), bit)
    return masks


class Schedule:
    """An immutable sequence of rounds.

    Round ``t`` (0-based) is *sent* at time ``t`` and *received* at time
    ``t + 1``.  Trailing empty rounds are trimmed so
    :attr:`total_time` matches the paper's "latest time there is a
    communication".

    A schedule constructed from an :class:`ArraySchedule`
    (:meth:`from_arrays`, or any array-native algorithm / builder) keeps
    the arrays as the source of truth and materialises the
    ``Round`` / ``Transmission`` objects lazily on first access; counters
    such as :attr:`total_time` and :meth:`total_deliveries` answer from
    the arrays without materialising anything.
    """

    __slots__ = ("_rounds", "_name", "_arrays")

    def __init__(self, rounds: Iterable[Round], name: str = "") -> None:
        rnds = list(rounds)
        while rnds and rnds[-1].is_empty():
            rnds.pop()
        self._rounds: Optional[Tuple[Round, ...]] = tuple(rnds)
        self._name = name
        self._arrays: Optional[ArraySchedule] = None

    @classmethod
    def from_arrays(
        cls, arrays: ArraySchedule, name: Optional[str] = None
    ) -> "Schedule":
        """Lazy object-view facade over a canonical :class:`ArraySchedule`."""
        self = object.__new__(cls)
        self._rounds = None
        self._name = arrays.name if name is None else name
        self._arrays = arrays
        return self

    # ------------------------------------------------------------------
    def _materialized(self) -> Tuple[Round, ...]:
        """The object rounds, built from the arrays on first demand."""
        if self._rounds is None:
            assert self._arrays is not None
            self._rounds = self._arrays.build_rounds()
        return self._rounds

    @property
    def name(self) -> str:
        """Name of the producing algorithm (used in reports)."""
        return self._name

    @property
    def rounds(self) -> Tuple[Round, ...]:
        """All rounds, index = send time (materialises the object view)."""
        return self._materialized()

    @property
    def is_array_backed(self) -> bool:
        """Whether the canonical array form already exists."""
        return self._arrays is not None

    def arrays(
        self, *, n: Optional[int] = None, n_messages: Optional[int] = None
    ) -> ArraySchedule:
        """The canonical :class:`ArraySchedule` form of this schedule.

        For an array-backed schedule this is (a widened view of) the
        stored arrays; otherwise the arrays are packed from the object
        view and memoised.  ``n`` / ``n_messages`` fix the processor and
        message universes (defaults: inferred from the content).
        """
        if self._arrays is None:
            self._arrays = ArraySchedule.from_schedule(self)
        arr = self._arrays
        if n is not None and n > arr.n:
            return arr.widen(n, n_messages)
        if n_messages is not None and n_messages != arr.n_messages:
            return arr.widen(arr.n, n_messages)
        return arr

    @property
    def total_time(self) -> int:
        """The paper's total communication time (number of rounds).

        The last round is sent at ``total_time - 1`` and received at
        ``total_time``.
        """
        if self._rounds is None:
            assert self._arrays is not None
            return self._arrays.total_time
        return len(self._rounds)

    def round_at(self, t: Time) -> Round:
        """The round sent at time ``t`` (empty if past the end)."""
        rounds = self._materialized()
        if 0 <= t < len(rounds):
            return rounds[t]
        return _EMPTY_ROUND

    def transmissions_at(self, t: Time) -> Tuple[Transmission, ...]:
        """Transmissions sent at time ``t``."""
        return self.round_at(t).transmissions

    def total_messages(self) -> int:
        """Total multicasts across all rounds."""
        if self._rounds is None:
            assert self._arrays is not None
            return self._arrays.n_transmissions
        return sum(len(r) for r in self._rounds)

    def total_deliveries(self) -> int:
        """Total point-to-point deliveries across all rounds."""
        if self._rounds is None:
            assert self._arrays is not None
            return self._arrays.delivery_count()
        return sum(r.delivery_count() for r in self._rounds)

    def max_fan_out(self) -> int:
        """Largest multicast fan-out anywhere in the schedule (0 if empty)."""
        if self._rounds is None:
            assert self._arrays is not None
            return self._arrays.max_fan_out()
        return max(
            (tx.fan_out() for r in self._rounds for tx in r), default=0
        )

    def with_name(self, name: str) -> "Schedule":
        """Same schedule carrying a different name."""
        if self._rounds is None:
            assert self._arrays is not None
            return Schedule.from_arrays(self._arrays, name=name)
        out = Schedule((), name=name)
        out._rounds = self._rounds
        out._arrays = self._arrays
        return out

    def __iter__(self) -> Iterator[Round]:
        return iter(self._materialized())

    def __len__(self) -> int:
        return self.total_time

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        if (
            self._arrays is not None
            and other._arrays is not None
            and self._arrays == other._arrays
        ):
            return True
        return self._materialized() == other._materialized()

    def __hash__(self) -> int:
        return hash(self._materialized())

    def __repr__(self) -> str:
        label = f" name={self._name!r}" if self._name else ""
        return f"Schedule(total_time={self.total_time}{label})"


_EMPTY_ROUND = Round(())


class ScheduleBuilder:
    """Accumulates ``send(time, sender, message, destinations)`` events.

    The builder is how the Propagate-Up and Propagate-Down schedules are
    *overlapped* into the ConcurrentUpDown schedule: when the same sender
    sends the same message at the same time in both (steps (U4) and (D3)
    deliberately coincide — Theorem 1), the destination sets are merged
    into a single multicast.  A same-time same-sender event with a
    *different* message raises :class:`ScheduleConflictError` immediately,
    which is exactly the no-interference condition the theorem proves.

    :meth:`build` packs the accumulated events straight into an
    :class:`ArraySchedule` (the returned :class:`Schedule` is the lazy
    facade over it), so schedules assembled through the builder are
    array-backed like the native pipeline's.
    """

    __slots__ = ("_events",)

    def __init__(self) -> None:
        # time -> sender -> (message, set of destinations)
        self._events: Dict[int, Dict[int, Tuple[int, set]]] = {}

    def send(
        self, time: Time, sender: Vertex, message: Message, destinations: VertexSet
    ) -> "ScheduleBuilder":
        """Record that ``sender`` multicasts ``message`` at ``time``.

        Merges with an existing same-time event of the same sender when the
        message matches; raises otherwise.
        """
        if time < 0:
            raise ScheduleError(f"negative send time {time}")
        dests = set(int(d) for d in destinations)
        if not dests:
            return self  # nothing to do; empty multicasts are dropped
        at_time = self._events.setdefault(int(time), {})
        existing = at_time.get(int(sender))
        if existing is None:
            at_time[int(sender)] = (int(message), dests)
        else:
            prev_message, prev_dests = existing
            if prev_message != int(message):
                raise ScheduleConflictError(
                    f"processor {sender} would send both message {prev_message} "
                    f"and message {message} at time {time}"
                )
            prev_dests.update(dests)
        return self

    def merge(self, other: "ScheduleBuilder") -> "ScheduleBuilder":
        """Overlap all events of ``other`` into this builder."""
        for time, at_time in other._events.items():
            for sender, (message, dests) in at_time.items():
                self.send(time, sender, message, dests)
        return self

    def build(self, name: str = "") -> Schedule:
        """Freeze into an array-backed :class:`Schedule`, validating every round."""
        if not self._events:
            return Schedule((), name=name)
        times: List[int] = []
        senders: List[int] = []
        messages: List[int] = []
        dests: List[Sequence[int]] = []
        max_id = -1
        min_id = 0
        for t, at_time in self._events.items():
            for s, (m, ds) in at_time.items():
                times.append(t)
                senders.append(s)
                messages.append(m)
                dests.append(tuple(ds))
                top = max(ds)
                low = min(ds)
                if s > top:
                    top = s
                if s < low:
                    low = s
                if top > max_id:
                    max_id = top
                if low < min_id:
                    min_id = low
        if min_id < 0 or max_id >= _MAX_PACKED_ID:
            return self._build_objects(name)  # ids the mask cannot pack
        n = max_id + 1
        arrays = ArraySchedule.from_events(
            np.asarray(times, dtype=np.int64),
            np.asarray(senders, dtype=np.int64),
            np.asarray(messages, dtype=np.int64),
            _masks_from_dest_lists(dests, n),
            n=n,
            name=name,
        )
        return Schedule.from_arrays(arrays)

    def _build_objects(self, name: str) -> Schedule:
        """Object-path fallback for ids the packed mask cannot represent."""
        horizon = max(self._events) + 1
        rounds: List[Round] = []
        for t in range(horizon):
            at_time = self._events.get(t, {})
            rounds.append(
                Round(
                    Transmission(sender=s, message=m, destinations=frozenset(d))
                    for s, (m, d) in at_time.items()
                )
            )
        return Schedule(rounds, name=name)

    @staticmethod
    def from_schedule(schedule: Schedule) -> "ScheduleBuilder":
        """Builder pre-loaded with every event of an existing schedule.

        .. deprecated::
            Round-tripping an *array-backed* schedule through the builder
            to modify it is the legacy mutation path; operate on
            :meth:`Schedule.arrays` (or rebuild through the array
            pipeline) instead.
        """
        if schedule.is_array_backed:
            warnings.warn(
                "mutating an array-backed schedule via "
                "ScheduleBuilder.from_schedule() is deprecated; use "
                "Schedule.arrays() and the array pipeline instead",
                DeprecationWarning,
                stacklevel=2,
            )
        return ScheduleBuilder._load(schedule)

    @staticmethod
    def _load(schedule: Schedule) -> "ScheduleBuilder":
        """Internal non-deprecated loader (object-path algorithms)."""
        builder = ScheduleBuilder()
        for t, rnd in enumerate(schedule):
            for tx in rnd:
                builder.send(t, tx.sender, tx.message, tx.destinations)
        return builder


def merge_schedules(first: Schedule, second: Schedule, name: str = "") -> Schedule:
    """Overlap two schedules into one (the ConcurrentUpDown combination).

    Array-backed inputs merge natively (their event rows are concatenated
    and re-canonicalised); object inputs go through the builder.  Either
    way a :class:`ScheduleConflictError` is raised when the overlap
    breaks a model rule — by Theorem 1 this never happens for the
    Propagate-Up / Propagate-Down pair.
    """
    if first.is_array_backed and second.is_array_backed:
        a = first.arrays()
        b = second.arrays()
        n = max(a.n, b.n)
        a, b = a.widen(n), b.widen(n)
        merged = ArraySchedule.from_events(
            np.concatenate([a.round.astype(np.int64), b.round.astype(np.int64)]),
            np.concatenate([a.sender.astype(np.int64), b.sender.astype(np.int64)]),
            np.concatenate([a.message.astype(np.int64), b.message.astype(np.int64)]),
            np.vstack([a.dest_mask, b.dest_mask]),
            n=n,
            n_messages=max(a.n_messages, b.n_messages),
            name=name,
        )
        return Schedule.from_arrays(merged)
    builder = ScheduleBuilder._load(first)
    builder.merge(ScheduleBuilder._load(second))
    return builder.build(name=name)
