"""Weighted gossiping (paper Section 4).

Each processor ``p`` holds ``l_p >= 1`` messages and everyone must end
with all ``N = sum(l_p)`` messages.  The paper's recipe: *"replace a
processor that needs to send l messages with a chain with l processors.
In practice, one only mimics this splitting process."*

We implement the splitting literally and transparently:

* :func:`expand_weighted_tree` replaces every vertex ``v`` of weight
  ``l`` by a chain of ``l`` virtual processors — the top one takes ``v``'s
  link to its parent, the bottom one adopts ``v``'s children — and
  returns the virtual→real map;
* :func:`weighted_gossip` builds the chain-expanded tree from the
  network's minimum-depth spanning tree, runs ConcurrentUpDown on it, and
  returns a :class:`WeightedGossipPlan` whose schedule is valid and
  complete on the *expanded* network in exactly ``N + r'`` rounds, where
  ``r'`` is the expanded tree's height (``r' <= r + sum of extra chain
  hops on the deepest path``).

The "mimicking" caveat: projecting virtual processors back onto real
hardware means a real processor may need to perform two virtual sends in
one round (its chain-top talking to the parent while its chain-bottom
talks to the children).  The expanded-network schedule is the object the
paper's bound speaks about; :meth:`WeightedGossipPlan.real_round_load`
quantifies how much per-round parallelism the mimicry actually needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

if TYPE_CHECKING:  # the engine is only imported lazily, inside execute()
    from ..simulator.engine import ExecutionResult

from ..exceptions import ReproError
from ..networks.builders import tree_to_graph
from ..networks.graph import Graph
from ..networks.spanning_tree import minimum_depth_spanning_tree
from ..tree.labeling import LabeledTree
from ..tree.tree import Tree
from .concurrent_updown import concurrent_updown
from .schedule import Schedule

__all__ = ["expand_weighted_tree", "weighted_gossip", "WeightedGossipPlan"]


def expand_weighted_tree(
    tree: Tree, weights: Sequence[int]
) -> Tuple[Tree, List[int]]:
    """Chain-expand a weighted tree.

    Returns ``(expanded_tree, owner)`` where ``owner[virtual] = real``.
    Virtual ids are assigned so that each real vertex's chain is
    contiguous top-down; message ``m`` of the expanded instance
    originates at virtual vertex with DFS label ``m`` as usual.
    """
    if len(weights) != tree.n:
        raise ReproError(f"need one weight per vertex, got {len(weights)}")
    for v, w in enumerate(weights):
        if w < 1:
            raise ReproError(f"vertex {v} has weight {w}; weights must be >= 1")
    # Allocate virtual ids: chain of v occupies chain_top[v] .. chain_top[v]+w-1.
    chain_top: List[int] = []
    total = 0
    for v in range(tree.n):
        chain_top.append(total)
        total += int(weights[v])
    owner: List[int] = [0] * total
    parents: List[int] = [0] * total
    for v in range(tree.n):
        top = chain_top[v]
        w = int(weights[v])
        for offset in range(w):
            owner[top + offset] = v
        # chain-internal links
        for offset in range(1, w):
            parents[top + offset] = top + offset - 1
        # the chain top links where v linked
        p = tree.parent(v)
        if p < 0:
            parents[top] = -1
            root = top
        else:
            parents[top] = chain_top[p] + int(weights[p]) - 1  # parent's chain bottom
    expanded = Tree(parents, root=root, name=f"{tree.name or 'tree'}-weighted")
    return expanded, owner


@dataclass(frozen=True)
class WeightedGossipPlan:
    """Result of weighted gossiping via chain expansion.

    Attributes
    ----------
    graph:
        The original network.
    tree:
        The minimum-depth spanning tree of the original network.
    weights:
        The per-real-processor message counts.
    expanded:
        The chain-expanded labelled tree (the instance actually solved).
    owner:
        ``owner[virtual] = real`` vertex map.
    schedule:
        The ConcurrentUpDown schedule on the expanded tree; message ids
        are the expanded tree's DFS labels.
    """

    graph: Graph
    tree: Tree
    weights: Tuple[int, ...]
    expanded: LabeledTree
    owner: Tuple[int, ...]
    schedule: Schedule

    @property
    def total_messages(self) -> int:
        """``N = sum(l_p)`` — the number of distinct messages."""
        return self.expanded.n

    @property
    def total_time(self) -> int:
        """The schedule's total communication time (= ``N + r'``)."""
        return self.schedule.total_time

    @property
    def bound(self) -> int:
        """Theorem 1 applied to the expanded tree: ``N + height'``."""
        return self.expanded.n + self.expanded.height

    def execute(self) -> "ExecutionResult":
        """Validate the schedule on the expanded network (raises on error)."""
        from ..simulator.engine import execute_schedule
        from ..simulator.state import labeled_holdings

        return execute_schedule(
            tree_to_graph(self.expanded.tree),
            self.schedule,
            initial_holds=labeled_holdings(self.expanded.labels()),
            require_complete=True,
        )

    def messages_of_real(self, real_vertex: int) -> List[int]:
        """The DFS labels of the messages originating at a real processor."""
        return [
            self.expanded.label_of(virt)
            for virt in range(self.expanded.n)
            if self.owner[virt] == real_vertex
        ]

    def real_round_load(self) -> Dict[int, int]:
        """Max simultaneous virtual sends per real processor.

        ``1`` everywhere means the expanded schedule projects onto real
        hardware without extra parallelism; larger values quantify the
        paper's "mimicking" requirement.
        """
        worst: Dict[int, int] = {v: 0 for v in range(self.graph.n)}
        for rnd in self.schedule:
            per_real: Dict[int, int] = {}
            for tx in rnd:
                real = self.owner[tx.sender]
                # chain-internal transmissions are bookkeeping, not wire traffic
                external = [
                    d for d in tx.destinations if self.owner[d] != real
                ]
                if external:
                    per_real[real] = per_real.get(real, 0) + 1
            for real, count in per_real.items():
                if count > worst[real]:
                    worst[real] = count
        return worst


def weighted_gossip(graph: Graph, weights: Sequence[int]) -> WeightedGossipPlan:
    """Solve weighted gossiping on ``graph`` with per-processor ``weights``.

    Builds the minimum-depth spanning tree, chain-expands it, and runs
    ConcurrentUpDown on the expansion; the returned plan's schedule takes
    exactly ``N + r'`` rounds.
    """
    tree = minimum_depth_spanning_tree(graph)
    expanded_tree, owner = expand_weighted_tree(tree, weights)
    labeled = LabeledTree(expanded_tree)
    schedule = concurrent_updown(labeled).with_name("ConcurrentUpDown-weighted")
    return WeightedGossipPlan(
        graph=graph,
        tree=tree,
        weights=tuple(int(w) for w in weights),
        expanded=labeled,
        owner=tuple(owner),
        schedule=schedule,
    )
