"""End-to-end gossiping pipeline: network in, verified schedule out.

This is the library's front door.  :func:`gossip` reproduces the paper's
two-stage procedure:

1. build the minimum-depth spanning tree of the network (Section 3.1),
2. DFS-label it and run the selected tree-gossiping algorithm
   (Section 3.2) — ConcurrentUpDown by default.

The result object bundles every intermediate artefact (tree, labelling,
schedule) plus :meth:`GossipPlan.execute`, which replays the schedule on
the round-based simulator and checks completeness, and
:meth:`GossipPlan.vertex_completion_times` for per-processor analysis.

Message ids in the schedule are DFS labels; :attr:`GossipPlan.labeled`
maps them back to vertices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..exceptions import ReproError
from ..networks.bfs import require_connected
from ..networks.builders import tree_to_graph
from ..networks.graph import Graph
from ..networks.spanning_tree import minimum_depth_spanning_tree
from ..tree.labeling import LabeledTree
from ..tree.tree import Tree
from .schedule import Schedule

__all__ = ["GossipPlan", "gossip", "gossip_on_tree", "ALGORITHMS", "register_algorithm"]

#: Registry of tree-gossiping algorithms: name -> (LabeledTree -> Schedule).
ALGORITHMS: Dict[str, Callable[[LabeledTree], Schedule]] = {}


def register_algorithm(name: str) -> Callable:
    """Decorator registering a tree-gossiping algorithm under ``name``."""

    def wrap(fn: Callable[[LabeledTree], Schedule]) -> Callable[[LabeledTree], Schedule]:
        ALGORITHMS[name] = fn
        return fn

    return wrap


def _populate_registry() -> None:
    """Late import so the registry sees every algorithm module."""
    if ALGORITHMS:
        return
    from .concurrent_updown import concurrent_updown
    from .simple import simple_gossip
    from .store_forward import (
        greedy_multicast_gossip,
        greedy_updown_gossip,
        telephone_gossip,
    )
    from .updown import updown_gossip

    ALGORITHMS.update(
        {
            "concurrent-updown": concurrent_updown,
            "simple": simple_gossip,
            "updown": updown_gossip,
            "updown-greedy": greedy_updown_gossip,
            "greedy": greedy_multicast_gossip,
            "telephone": telephone_gossip,
        }
    )


@dataclass(frozen=True)
class GossipPlan:
    """A gossiping solution for one network.

    Attributes
    ----------
    graph:
        The original communication network.
    tree:
        The spanning tree all communications use.
    labeled:
        The tree's DFS labelling (message id <-> vertex map).
    schedule:
        The communication schedule; message ids are DFS labels.
    algorithm:
        Registry name of the algorithm that produced the schedule.
    """

    graph: Graph
    tree: Tree
    labeled: LabeledTree
    schedule: Schedule
    algorithm: str

    @property
    def total_time(self) -> int:
        """Total communication time of the schedule."""
        return self.schedule.total_time

    @property
    def radius_bound(self) -> int:
        """Theorem 1's guarantee ``n + height`` for this tree."""
        return self.graph.n + self.tree.height

    def execute(self, record_arrivals: bool = False, on_tree_only: bool = False):
        """Replay the schedule on the simulator; raises if anything breaks.

        Parameters
        ----------
        record_arrivals:
            Log every delivery (needed for per-vertex timelines).
        on_tree_only:
            Validate transmissions against the *tree* edges instead of the
            full network — a stricter check, since the paper's algorithms
            only ever use tree edges.
        """
        from ..simulator.engine import execute_schedule
        from ..simulator.state import labeled_holdings

        network = tree_to_graph(self.tree) if on_tree_only else self.graph
        return execute_schedule(
            network,
            self.schedule,
            initial_holds=labeled_holdings(self.labeled.labels()),
            require_complete=True,
            record_arrivals=record_arrivals,
        )

    def vertex_completion_times(self) -> Dict[int, int]:
        """Per-vertex first time holding all messages (vertex id keyed)."""
        result = self.execute()
        return {
            v: t for v, t in enumerate(result.completion_times) if t is not None
        }


def gossip(
    graph: Graph,
    algorithm: str = "concurrent-updown",
    tree: Optional[Tree] = None,
) -> GossipPlan:
    """Solve gossiping on ``graph``.

    Parameters
    ----------
    graph:
        A connected network.
    algorithm:
        One of :data:`ALGORITHMS` (default the paper's ConcurrentUpDown).
    tree:
        Override the spanning tree (e.g. for the tree-choice ablation);
        by default the minimum-depth spanning tree is built, making the
        schedule at most ``n + radius`` rounds long.
    """
    _populate_registry()
    if algorithm not in ALGORITHMS:
        raise ReproError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
        )
    require_connected(graph, "gossiping")
    if tree is None:
        tree = minimum_depth_spanning_tree(graph)
    labeled = LabeledTree(tree)
    schedule = ALGORITHMS[algorithm](labeled)
    return GossipPlan(
        graph=graph, tree=tree, labeled=labeled, schedule=schedule, algorithm=algorithm
    )


def gossip_on_tree(tree: Tree, algorithm: str = "concurrent-updown") -> GossipPlan:
    """Solve gossiping directly on a tree network."""
    return gossip(tree_to_graph(tree), algorithm=algorithm, tree=tree)
