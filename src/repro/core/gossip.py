"""End-to-end gossiping pipeline: network in, verified schedule out.

This is the library's front door.  :func:`gossip` reproduces the paper's
two-stage procedure:

1. build the minimum-depth spanning tree of the network (Section 3.1),
2. DFS-label it and run the selected tree-gossiping algorithm
   (Section 3.2) — ConcurrentUpDown by default.

The result object bundles every intermediate artefact (tree, labelling,
schedule) plus :meth:`GossipPlan.execute`, which replays the schedule on
the round-based simulator and checks completeness, and
:meth:`GossipPlan.vertex_completion_times` for per-processor analysis.

Message ids in the schedule are DFS labels; :attr:`GossipPlan.labeled`
maps them back to vertices.

API conventions
---------------
Everything after the first positional argument is **keyword-only**:
``gossip(g, algorithm="simple")``, ``plan.execute(on_tree_only=True)``.
Old positional call sites keep working for now behind a
``DeprecationWarning`` shim.  The first argument of :func:`gossip` is a
*network spec* resolved by :func:`resolve_network` — a
:class:`~repro.networks.graph.Graph`, a :class:`~repro.tree.tree.Tree`
(scheduling happens on exactly that tree), or a topology-family string
such as ``"grid"`` or ``"grid:64"``.

The algorithm registry :data:`ALGORITHMS` is populated **eagerly**: the
built-in algorithm modules register themselves via
:func:`register_algorithm` when ``repro.core`` is imported, so the
registry is always complete by the time any public entry point runs.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple, Union

if TYPE_CHECKING:  # the engine is never imported at module load time
    from ..simulator.engine import ExecutionResult

from ..exceptions import ReproError
from ..networks.bfs import require_connected
from ..networks.builders import tree_to_graph
from ..networks.graph import Graph
from ..networks.spanning_tree import minimum_depth_spanning_tree
from ..tree.labeling import LabeledTree
from ..tree.tree import Tree
from .schedule import ArraySchedule, Round, Schedule

__all__ = [
    "GossipPlan",
    "gossip",
    "gossip_on_tree",
    "resolve_network",
    "NetworkSpec",
    "ALGORITHMS",
    "register_algorithm",
]

#: Anything :func:`resolve_network` understands as a communication network.
NetworkSpec = Union[Graph, Tree, str]

#: Registry of tree-gossiping algorithms: name -> (LabeledTree -> Schedule).
#: Complete as soon as ``repro.core`` is imported (eager registration).
ALGORITHMS: Dict[str, Callable[[LabeledTree], Schedule]] = {}


def register_algorithm(name: str) -> Callable:
    """Decorator registering a tree-gossiping algorithm under ``name``.

    The built-in algorithm modules apply this at import time (see
    :mod:`repro.core`), so :data:`ALGORITHMS` never needs lazy
    population; third-party algorithms can use the same decorator.
    """

    def wrap(fn: Callable[[LabeledTree], Schedule]) -> Callable[[LabeledTree], Schedule]:
        ALGORITHMS[name] = fn
        return fn

    return wrap


def _populate_registry() -> None:
    """Deprecated back-compat shim; registration is eager now.

    Importing :mod:`repro.core` (which importing *this* module already
    triggers) runs every built-in algorithm module's
    :func:`register_algorithm` decorator, so there is nothing left to
    populate.  Kept only so stale external callers don't crash.
    """
    warnings.warn(
        "_populate_registry() is obsolete: ALGORITHMS is registered eagerly "
        "at `import repro.core`",
        DeprecationWarning,
        stacklevel=2,
    )


def resolve_network(
    network: NetworkSpec, *, tree: Optional[Tree] = None
) -> Tuple[Graph, Optional[Tree]]:
    """Single dispatch point mapping a network spec to ``(graph, tree)``.

    Shared by :func:`gossip` and :class:`repro.service.GossipService`, so
    every front door accepts the same spellings:

    * a :class:`~repro.networks.graph.Graph` — passed through;
    * a :class:`~repro.tree.tree.Tree` — the network is the tree itself
      and scheduling is pinned to it;
    * a topology-family string ``"family"`` or ``"family:n"`` (e.g.
      ``"grid"``, ``"hypercube:64"``) resolved through
      :data:`repro.analysis.sweep.FAMILIES`; ``n`` defaults to 16.

    ``tree`` is the caller's explicit spanning-tree override; passing one
    alongside a ``Tree`` network spec is rejected unless they are equal.
    """
    if isinstance(network, Graph):
        return network, tree
    if isinstance(network, Tree):
        if tree is not None and tree != network:
            raise ReproError(
                "network spec is a Tree but a different tree= override was given"
            )
        return tree_to_graph(network), network
    if isinstance(network, str):
        from ..analysis.sweep import FAMILIES, family_instance

        name, sep, size = network.partition(":")
        if name not in FAMILIES:
            raise ReproError(
                f"unknown topology family {name!r}; choose from {sorted(FAMILIES)}"
            )
        if sep:
            try:
                n = int(size)
            except ValueError as exc:
                raise ReproError(
                    f"bad topology size in {network!r}; want 'family:n' with integer n"
                ) from exc
        else:
            n = 16
        return family_instance(name, n), tree
    raise ReproError(
        f"cannot interpret {network!r} as a network "
        "(want a Graph, a Tree, or a topology-family string)"
    )


def _warn_positional(what: str) -> None:
    warnings.warn(
        f"positional arguments to {what} beyond the first are deprecated; "
        "pass them as keywords",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class GossipPlan:
    """A gossiping solution for one network.

    Attributes
    ----------
    graph:
        The original communication network.
    tree:
        The spanning tree all communications use.
    labeled:
        The tree's DFS labelling (message id <-> vertex map).
    schedule:
        The communication schedule; message ids are DFS labels.
    algorithm:
        Registry name of the algorithm that produced the schedule.
    """

    graph: Graph
    tree: Tree
    labeled: LabeledTree
    schedule: Schedule
    algorithm: str

    def __post_init__(self) -> None:
        # Memoisation slot for the default execution (plan is frozen, so
        # the replay is deterministic and safe to cache).
        object.__setattr__(self, "_default_execution", None)

    @property
    def total_time(self) -> int:
        """Total communication time of the schedule."""
        return self.schedule.total_time

    def arrays(self) -> ArraySchedule:
        """The canonical array form of the schedule.

        Flat ``(round, sender, message)`` columns plus the destination
        bitmask matrix — the form every consumer (simulator, linter,
        service cache) works from.  Cheap: array-backed schedules hand
        back their backing :class:`~repro.core.schedule.ArraySchedule`
        without materialising any per-transmission objects.
        """
        return self.schedule.arrays()

    def rounds(self) -> Tuple[Round, ...]:
        """The object view: one :class:`Round` of transmissions per time.

        Materialised lazily from the array form on first call (and then
        cached on the schedule facade); prefer :meth:`arrays` in
        loops that only need the flat columns.
        """
        return self.schedule.rounds

    @property
    def radius_bound(self) -> int:
        """Theorem 1's guarantee ``n + height`` for this tree."""
        return self.graph.n + self.tree.height

    def execute(
        self,
        *args: object,
        record_arrivals: bool = False,
        on_tree_only: bool = False,
    ) -> "ExecutionResult":
        """Replay the schedule on the simulator; raises if anything breaks.

        The default replay (no flags) is computed once and memoised on
        the plan, so repeated metric queries don't pay simulator cost.

        Parameters
        ----------
        record_arrivals:
            Log every delivery (needed for per-vertex timelines).
        on_tree_only:
            Validate transmissions against the *tree* edges instead of the
            full network — a stricter check, since the paper's algorithms
            only ever use tree edges.
        """
        if args:
            _warn_positional("GossipPlan.execute()")
            record_arrivals = bool(args[0])
            if len(args) > 1:
                on_tree_only = bool(args[1])
            if len(args) > 2:
                raise TypeError(
                    f"execute() takes at most 2 optional arguments ({len(args)} given)"
                )
        is_default = not record_arrivals and not on_tree_only
        if is_default and self._default_execution is not None:
            return self._default_execution

        from ..simulator.engine import execute_schedule
        from ..simulator.state import labeled_holdings

        network = tree_to_graph(self.tree) if on_tree_only else self.graph
        result = execute_schedule(
            network,
            self.schedule,
            initial_holds=labeled_holdings(self.labeled.labels()),
            require_complete=True,
            record_arrivals=record_arrivals,
        )
        if is_default:
            object.__setattr__(self, "_default_execution", result)
        return result

    def vertex_completion_times(self) -> Dict[int, int]:
        """Per-vertex first time holding all messages (vertex id keyed).

        Uses the memoised default execution — calling this repeatedly
        (or after :meth:`execute`) costs one simulator run in total.
        """
        result = self.execute()
        return {
            v: t for v, t in enumerate(result.completion_times) if t is not None
        }


def gossip(
    graph: NetworkSpec,
    *args,
    algorithm: str = "concurrent-updown",
    tree: Optional[Tree] = None,
) -> GossipPlan:
    """Solve gossiping on ``graph``.

    Parameters
    ----------
    graph:
        A connected network spec: a :class:`Graph`, a :class:`Tree`
        (schedules on exactly that tree), or a topology-family string
        like ``"grid"`` / ``"grid:64"`` (see :func:`resolve_network`).
    algorithm:
        One of :data:`ALGORITHMS` (default the paper's ConcurrentUpDown).
        Keyword-only.
    tree:
        Override the spanning tree (e.g. for the tree-choice ablation);
        by default the minimum-depth spanning tree is built, making the
        schedule at most ``n + radius`` rounds long.  Keyword-only.
    """
    if args:
        _warn_positional("gossip()")
        algorithm = args[0]
        if len(args) > 1:
            tree = args[1]
        if len(args) > 2:
            # The graph itself is the 1st positional argument, so the
            # caller passed 1 + len(args) in total.
            raise TypeError(
                f"gossip() takes at most 3 positional arguments ({1 + len(args)} given)"
            )
    graph, tree = resolve_network(graph, tree=tree)
    if algorithm not in ALGORITHMS:
        raise ReproError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
        )
    require_connected(graph, "gossiping")
    if tree is None:
        tree = minimum_depth_spanning_tree(graph)
    labeled = LabeledTree(tree)
    schedule = ALGORITHMS[algorithm](labeled)
    return GossipPlan(
        graph=graph, tree=tree, labeled=labeled, schedule=schedule, algorithm=algorithm
    )


def gossip_on_tree(tree: Tree, *args, algorithm: str = "concurrent-updown") -> GossipPlan:
    """Solve gossiping directly on a tree network."""
    if args:
        _warn_positional("gossip_on_tree()")
        algorithm = args[0]
        if len(args) > 1:
            # The tree is the 1st positional argument, so the caller
            # passed 1 + len(args) in total.
            raise TypeError(
                f"gossip_on_tree() takes at most 2 positional arguments "
                f"({1 + len(args)} given)"
            )
    return gossip(tree_to_graph(tree), algorithm=algorithm, tree=tree)
