"""The non-uniform optimal schedule for odd paths (paper Discussion).

Section 4: *"One may improve the performance of our algorithm by one
unit, but the protocol for each processor will not be uniform and the
algorithm will be much more complex.  The reason is that one needs to
alternate the delivery of messages from different subtrees."*

This module makes that remark constructive for the lower-bound family
itself: on the odd path ``P_{2m+1}`` (radius ``m``), gossiping completes
in exactly ``n + r - 1 = 3m`` rounds — one below ConcurrentUpDown's
``n + r`` and matching the Section 1 lower bound, so the schedule is
*optimal* (certified against the exhaustive search for small ``m``).

Construction (center at position 0, arms ``-m..-1`` and ``1..m``):

* **alternated inward streams** — the center receives the two arms'
  messages on alternating rounds: the left message from ``-d`` arrives
  at time ``2d - 1``, the right message from ``+d`` at time ``2d``;
  each is relayed across to the opposite arm in its arrival round.
  This alternation is exactly what a uniform per-vertex protocol cannot
  express, and it saves the final round;
* **origin multicasts** — a message's very first transmission goes both
  inward (towards the center) and outward (towards its own arm's tip)
  in one multicast;
* **outward relays** — every vertex forwards cross-arm and
  center-originated messages outward at the earliest calendar-feasible
  round (its inward slots and its outward neighbour's receive slots are
  fully determined by the fixed streams, leaving exactly enough gaps).

The last delivery is the far arm's tip receiving the opposite tip's
message at time ``3m``.  Validity, completeness and the exact total are
property-tested for all ``m`` up to 40.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..exceptions import ReproError
from ..networks.graph import Graph
from ..networks.topologies import path_graph
from .schedule import Schedule, ScheduleBuilder

__all__ = ["optimal_path_gossip", "optimal_path_time"]


def optimal_path_time(n: int) -> int:
    """The optimal total time ``n + r - 1 = 3m`` for the odd path."""
    if n < 3 or n % 2 == 0:
        raise ReproError(f"the optimal path schedule needs odd n >= 3, got {n}")
    return n + (n - 1) // 2 - 1


def optimal_path_gossip(n: int) -> Tuple[Graph, Schedule]:
    """Build the odd path ``P_n`` and its optimal gossip schedule.

    Returns ``(graph, schedule)`` with message ids equal to vertex ids
    (processor ``v`` originates message ``v``); vertices are numbered
    left to right, so the center is ``m = (n - 1) // 2``.
    """
    if n < 3 or n % 2 == 0:
        raise ReproError(f"the optimal path schedule needs odd n >= 3, got {n}")
    m = (n - 1) // 2
    center = m

    def vid(pos: int) -> int:
        return pos + m

    builder = ScheduleBuilder()
    send_cal: List[Dict[int, int]] = [dict() for _ in range(n)]
    recv_busy: List[Set[int]] = [set() for _ in range(n)]
    arrivals: List[List[Tuple[int, int]]] = [[] for _ in range(n)]

    def emit(t: int, sender: int, message: int, dests: List[int]) -> None:
        builder.send(t, sender, message, dests)
        send_cal[sender][t] = message
        for d in dests:
            recv_busy[d].add(t + 1)
            arrivals[d].append((t + 1, message))

    # Alternated inward streams: left message -d reaches the center at
    # 2d - 1, right message +d at 2d; a message's first hop multicasts
    # outward as well.
    for side in (-1, 1):
        for d in range(1, m + 1):
            msg = vid(side * d)
            center_arrival = 2 * d - 1 if side < 0 else 2 * d
            for q in range(d, 0, -1):
                dests = [vid(side * (q - 1))]
                if q == d and d < m:
                    dests.append(vid(side * (q + 1)))
                emit(center_arrival - q, vid(side * q), msg, dests)

    # The center: own message at time 0 to both arms; every arrival is
    # forwarded across in its own round (receive-before-send).
    emit(0, center, center, [vid(-1), vid(1)])
    for d in range(1, m + 1):
        emit(2 * d - 1, center, vid(-d), [vid(1)])
        emit(2 * d, center, vid(d), [vid(-1)])

    # Outward relays, processed center-out: forward every message that
    # did not originate farther out on the same arm, at the earliest
    # calendar-feasible round.
    for side in (-1, 1):
        for q in range(1, m):
            v = vid(side * q)
            nxt = vid(side * (q + 1))
            for avail, msg in sorted(arrivals[v]):
                origin = msg - m  # message id -> origin position
                if side * origin > q:
                    continue  # inward traffic, already handled
                if msg in (v, nxt):
                    continue
                t = avail
                while send_cal[v].get(t, msg) != msg or (t + 1) in recv_busy[nxt]:
                    t += 1
                emit(t, v, msg, [nxt])

    return path_graph(n), builder.build(name=f"optimal-path-{n}")
