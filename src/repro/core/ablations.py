"""Ablations of ConcurrentUpDown's design choices (see DESIGN.md §6).

The paper justifies sending the lookahead (lip) message at time 0 with a
worked argument: were it sent "at the latest time" like every other
body message, the upward stream would collide with the downward stream
and messages would get stuck at every level, as in the earlier
algorithms [12], [15].  This module makes that argument executable:

* :func:`propagate_up_no_lip` — step (U4) without the (U3) lookahead:
  every body message ``m`` (including the s-message) climbs at time
  ``m - k``.  On its own this is still feasible (the root still receives
  message ``m`` at time ``m``).
* :func:`concurrent_updown_no_lip` — overlapping the lazy variant with
  Propagate-Down.  For any tree containing a vertex with ``i > k`` and a
  non-leaf child this **raises**
  :class:`~repro.exceptions.ScheduleConflictError`: the child's
  lookahead now arrives at time ``i - k + 1``, exactly when the parent's
  (D3) stream delivers an o-message — the collision the paper describes.
* :func:`no_lip_penalty` — the constructive fallback: schedule the same
  tree with the no-lookahead greedy policy (the UpDown reconstruction)
  and report how many rounds beyond ``n + r`` the absence of the trick
  costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ScheduleConflictError
from ..tree.labeling import LabeledTree
from .propagate_down import propagate_down_builder
from .schedule import Schedule, ScheduleBuilder

__all__ = [
    "propagate_up_no_lip",
    "concurrent_updown_no_lip",
    "NoLipPenalty",
    "no_lip_penalty",
]


def propagate_up_no_lip(labeled: LabeledTree) -> Schedule:
    """Propagate-Up without the time-0 lookahead.

    Every body message ``m`` of every nonroot vertex is sent to the
    parent at time ``m - k`` ("the latest time", per the paper's
    counterfactual).  Feasible in isolation — Lemma 2's timing still
    holds — but incompatible with Propagate-Down.
    """
    builder = ScheduleBuilder()
    tree = labeled.tree
    for v in range(labeled.n):
        if tree.is_root(v):
            continue
        block = labeled.block(v)
        for m in range(block.i, block.j + 1):
            builder.send(m - block.k, v, m, (tree.parent(v),))
    return builder.build(name="Propagate-Up-no-lip")


def concurrent_updown_no_lip(labeled: LabeledTree) -> Schedule:
    """The lazy-lookahead overlap — raises on the paper's collision.

    Raises
    ------
    ScheduleConflictError
        Whenever the tree has an internal vertex whose first child is
        itself internal (every interesting tree), because the lookahead's
        arrival now lands on a busy receive slot.
    """
    up = ScheduleBuilder._load(propagate_up_no_lip(labeled))
    down = propagate_down_builder(labeled)
    return up.merge(down).build(name="ConcurrentUpDown-no-lip")


@dataclass(frozen=True)
class NoLipPenalty:
    """Outcome of the no-lip ablation on one tree.

    Attributes
    ----------
    conflicts:
        Whether the naive overlap raises (the paper's stuck-message
        collision).
    with_lip_time:
        ConcurrentUpDown's total time (= ``n + height``).
    without_lip_time:
        Total time of the no-lookahead greedy fallback.
    """

    conflicts: bool
    with_lip_time: int
    without_lip_time: int

    @property
    def extra_rounds(self) -> int:
        """Rounds lost by dropping the lookahead trick."""
        return self.without_lip_time - self.with_lip_time


def no_lip_penalty(labeled: LabeledTree) -> NoLipPenalty:
    """Measure what the (U3) lookahead buys on one tree."""
    from .concurrent_updown import concurrent_updown
    from .store_forward import greedy_updown_gossip

    try:
        concurrent_updown_no_lip(labeled)
        conflicts = False
    except ScheduleConflictError:
        conflicts = True
    return NoLipPenalty(
        conflicts=conflicts,
        with_lip_time=concurrent_updown(labeled).total_time,
        without_lip_time=greedy_updown_gossip(labeled).total_time,
    )
