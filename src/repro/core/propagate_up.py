"""Algorithm Propagate-Up (paper Section 3.2, steps U1–U4).

Generates the *upward* half of the ConcurrentUpDown schedule: every
message travels from its origin to the root so that the root receives
message ``m`` exactly at time ``m`` (for ``m >= 1``; it owns message 0).

Per nonroot vertex ``v`` with block ``(i, j, k)``:

* **(U3)** at time 0, ``v`` sends its lip-message to its parent — the
  message ``i`` when ``v`` is its parent's first child.  Sending the
  lookahead one round early is the paper's key trick: without it the
  downward stream would collide with the upward stream and messages would
  get stuck at every level (see the ``no_lip`` ablation).
* **(U4)** with ``w`` the number of lip-messages (0 or 1), ``v`` sends its
  rip-messages ``i+w .. j`` to its parent in increasing label order;
  message ``m`` leaves at time ``m - k``.

Steps (U1) and (U2) are the *receive* side of the same transmissions
(l-message at time 1, r-message ``m`` at time ``m - k``) and need no
separate events; Lemma 2 proves the two sides line up, and the test
suite checks it by simulation.
"""

from __future__ import annotations

from ..tree.labeling import LabeledTree
from .schedule import Schedule, ScheduleBuilder

__all__ = ["propagate_up_builder", "propagate_up"]


def propagate_up_builder(labeled: LabeledTree) -> ScheduleBuilder:
    """Emit all (U3)/(U4) send events into a fresh builder.

    Every event is a unicast to the parent; the builder representation
    lets :func:`repro.core.concurrent_updown.concurrent_updown` merge the
    coinciding (U4)/(D3) sends into single multicasts.
    """
    builder = ScheduleBuilder()
    tree = labeled.tree
    for v in range(labeled.n):
        if tree.is_root(v):
            continue
        block = labeled.block(v)
        parent = tree.parent(v)
        # (U3): the lip-message, one round ahead of the rip stream.
        if block.is_first_child:
            builder.send(0, v, block.i, (parent,))
        # (U4): rip-messages i+w .. j, message m at time m - k.
        for m in range(block.i + block.w, block.j + 1):
            builder.send(m - block.k, v, m, (parent,))
    return builder


def propagate_up(labeled: LabeledTree) -> Schedule:
    """The standalone Propagate-Up schedule (for inspection and tests).

    On its own this schedule delivers every message to the root by time
    ``n - 1`` (Lemma 2); it is one half of the ConcurrentUpDown overlap.
    """
    return propagate_up_builder(labeled).build(name="Propagate-Up")
