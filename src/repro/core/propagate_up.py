"""Algorithm Propagate-Up (paper Section 3.2, steps U1–U4).

Generates the *upward* half of the ConcurrentUpDown schedule: every
message travels from its origin to the root so that the root receives
message ``m`` exactly at time ``m`` (for ``m >= 1``; it owns message 0).

Per nonroot vertex ``v`` with block ``(i, j, k)``:

* **(U3)** at time 0, ``v`` sends its lip-message to its parent — the
  message ``i`` when ``v`` is its parent's first child.  Sending the
  lookahead one round early is the paper's key trick: without it the
  downward stream would collide with the upward stream and messages would
  get stuck at every level (see the ``no_lip`` ablation).
* **(U4)** with ``w`` the number of lip-messages (0 or 1), ``v`` sends its
  rip-messages ``i+w .. j`` to its parent in increasing label order;
  message ``m`` leaves at time ``m - k``.

Steps (U1) and (U2) are the *receive* side of the same transmissions
(l-message at time 1, r-message ``m`` at time ``m - k``) and need no
separate events; Lemma 2 proves the two sides line up, and the test
suite checks it by simulation.

The production path (:func:`propagate_up_events`) emits all events as
flat numpy columns in one vectorised sweep — the rip streams of all
vertices are expanded with a single repeat/offset trick, never touching
per-message Python objects.  Every event is implicitly a unicast to the
sender's parent, so no destination masks are materialised here; the
callers (:func:`propagate_up` and the ConcurrentUpDown assembly) set the
parent bits where they need them.  :func:`propagate_up_builder` keeps
the seed's per-vertex emission as the differential-testing reference.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..tree.labeling import LabeledTree
from .schedule import ArraySchedule, Schedule, ScheduleBuilder, _bit_of, _mask_width

__all__ = ["propagate_up_builder", "propagate_up_events", "propagate_up"]


def _repeat_offsets(counts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """For per-group sizes ``counts``: (group index, 0-based offset) per item."""
    reps = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    bounds = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=bounds[1:])
    offs = np.arange(len(reps), dtype=np.int64) - np.repeat(bounds, counts)
    return reps, offs


def propagate_up_events(
    labeled: LabeledTree,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All (U3)/(U4) sends as flat ``(time, sender, message)`` columns.

    Every event is a unicast to ``parent(sender)``.  The (U4) stream
    gives each nonroot vertex strictly increasing send times and (U3)
    fires at time 0 only where the first rip leaves at time >= 1, so the
    ``(time, sender)`` pairs are all distinct — the ConcurrentUpDown
    assembly relies on (and re-verifies) this.
    """
    arr = labeled.arrays
    nonroot = np.flatnonzero(arr.parent >= 0)

    # (U3): the lip-message, one round ahead of the rip stream.
    lip_v = nonroot[arr.w[nonroot] == 1]
    lip_t = np.zeros(len(lip_v), dtype=np.int64)
    lip_m = arr.i[lip_v]

    # (U4): rip-messages i+w .. j, message m at time m - k.
    starts = arr.i[nonroot] + arr.w[nonroot]
    counts = arr.j[nonroot] - starts + 1
    reps, offs = _repeat_offsets(counts)
    rip_v = nonroot[reps]
    rip_m = starts[reps] + offs
    rip_t = rip_m - arr.k[rip_v]

    times = np.concatenate([lip_t, rip_t])
    senders = np.concatenate([lip_v, rip_v])
    messages = np.concatenate([lip_m, rip_m])
    return times, senders, messages


def propagate_up_builder(labeled: LabeledTree) -> ScheduleBuilder:
    """Emit all (U3)/(U4) send events into a fresh builder.

    The seed per-vertex reference implementation, kept for ablations and
    for differential tests against :func:`propagate_up_events`.
    """
    builder = ScheduleBuilder()
    tree = labeled.tree
    for v in range(labeled.n):
        if tree.is_root(v):
            continue
        block = labeled.block(v)
        parent = tree.parent(v)
        # (U3): the lip-message, one round ahead of the rip stream.
        if block.is_first_child:
            builder.send(0, v, block.i, (parent,))
        # (U4): rip-messages i+w .. j, message m at time m - k.
        for m in range(block.i + block.w, block.j + 1):
            builder.send(m - block.k, v, m, (parent,))
    return builder


def propagate_up(labeled: LabeledTree) -> Schedule:
    """The standalone Propagate-Up schedule (for inspection and tests).

    On its own this schedule delivers every message to the root by time
    ``n - 1`` (Lemma 2); it is one half of the ConcurrentUpDown overlap.
    """
    times, senders, messages = propagate_up_events(labeled)
    arr = labeled.arrays
    n = labeled.n
    masks = np.zeros((len(times), _mask_width(n)), dtype=np.uint64)
    if len(times):
        word, bit = _bit_of(arr.parent[senders])
        masks[np.arange(len(times)), word] = bit
    arrays = ArraySchedule.from_events(
        times, senders, messages, masks,
        n=n, n_messages=n, name="Propagate-Up",
    )
    return Schedule.from_arrays(arrays)
