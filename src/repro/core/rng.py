"""Seeded splitmix64 randomness for the randomized gossip baselines.

The epidemic (:mod:`repro.core.epidemic`) and network-coded
(:mod:`repro.core.coded`) protocols are *randomized* algorithms, but the
repository's reproducibility contract is absolute: every run must be a
pure function of its seed.  This module provides the only randomness
source those protocols are allowed to use (enforced by
``scripts/check_conventions.py`` rule 6 — ``random.*`` and
``numpy.random`` are banned there), built on the **same splitmix64
finaliser and golden-ratio increment** as the fault model in
:mod:`repro.simulator.lossy`, so one seed governs both the protocol's
coin flips and the faults injected into it without the two streams ever
colliding (they are domain-separated by tag).

Two access patterns are offered:

* :func:`keyed_uniform` / :func:`keyed_u64` — stateless draws keyed by
  ``(seed, tag, *coords)``, exactly like
  ``repro.simulator.lossy._uniform``: iteration-order independent, so a
  protocol that asks "what does vertex ``v`` do in round ``t``?" gets
  the same answer no matter who asks first;
* :class:`SplitMix64` — a sequential stream (the classic splitmix64
  generator) for draws that have no natural coordinates, forked off a
  keyed root so substreams stay independent.
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

from ..exceptions import ReproError

__all__ = [
    "MASK64",
    "mix64",
    "keyed_u64",
    "keyed_uniform",
    "SplitMix64",
]

T = TypeVar("T")

MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def mix64(x: int) -> int:
    """splitmix64 finaliser — identical to ``repro.simulator.lossy._mix64``."""
    x = (x + _GOLDEN) & MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
    return x ^ (x >> 31)


def keyed_u64(seed: int, tag: int, *coords: int) -> int:
    """Deterministic 64-bit draw keyed by ``(seed, tag, coords)``.

    Pure function of its arguments — independent of call order, so
    per-(round, vertex) protocol decisions are reproducible even if the
    iteration order of the surrounding loop changes.
    """
    h = mix64(seed & MASK64)
    h = mix64(h ^ tag)
    for c in coords:
        h = mix64(h ^ ((c + 1) * _GOLDEN & MASK64))
    return h


def keyed_uniform(seed: int, tag: int, *coords: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` keyed by the coordinates."""
    return keyed_u64(seed, tag, *coords) / 2.0**64


class SplitMix64:
    """The classic sequential splitmix64 generator.

    Used for draws without natural coordinates (e.g. "pick a random
    subset of my basis rows"); create one per ``(round, vertex)`` via
    :func:`keyed_u64` so streams never alias::

        rng = SplitMix64(keyed_u64(seed, TAG, round, vertex))
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = seed & MASK64

    def next_u64(self) -> int:
        """The next 64-bit output word."""
        self._state = (self._state + _GOLDEN) & MASK64
        x = self._state
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
        return x ^ (x >> 31)

    def uniform(self) -> float:
        """Uniform draw in ``[0, 1)``."""
        return self.next_u64() / 2.0**64

    def randrange(self, k: int) -> int:
        """Uniform integer in ``[0, k)`` (unbiased via rejection)."""
        if k <= 0:
            raise ReproError(f"randrange needs k >= 1, got {k}")
        limit = (1 << 64) - ((1 << 64) % k)
        while True:
            x = self.next_u64()
            if x < limit:
                return x % k

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform element of a non-empty sequence."""
        return seq[self.randrange(len(seq))]

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        """``min(k, len(seq))`` distinct elements, order randomised.

        Partial Fisher–Yates over a copy — deterministic for a fixed
        stream state, independent of the input's object identities.
        """
        pool = list(seq)
        k = min(k, len(pool))
        for i in range(k):
            j = i + self.randrange(len(pool) - i)
            pool[i], pool[j] = pool[j], pool[i]
        return pool[:k]

    def bit_subset(self, mask: int) -> int:
        """A uniformly random sub-bitset of ``mask`` (possibly empty).

        Each set bit of ``mask`` is kept independently with probability
        1/2 — the GF(2) "uniform random linear combination" draw used by
        the coded-gossip packets, one 64-bit word at a time.
        """
        out = 0
        shift = 0
        while mask >> shift:
            out |= ((mask >> shift) & MASK64 & self.next_u64()) << shift
            shift += 64
        return out
