"""Algebraic (network-coded) gossip over GF(2).

Haeupler-style algebraic gossip (*Tighter Worst-Case Bounds on
Algebraic Gossip*, PAPERS.md): instead of forwarding individual
rumours, each round every processor transmits a **uniform random GF(2)
linear combination** of everything in its knowledge space, and a
processor is *complete* when the combinations it has accumulated span
the full message space — rank ``n`` — at which point it can decode
every rumour by Gaussian elimination.  Coding removes the coupon
collector from gossip: a random combination of an informed span is
innovative to any receiver whose span differs, with probability ≥ 1/2,
so no particular rumour is ever the bottleneck.

Representation is bit-parallel throughout: a GF(2) vector over the
``n``-dimensional message space is a Python int interpreted as packed
uint64 words — bit ``m`` is the coefficient of message ``m`` — XOR is
vector addition, and the combination draw is
:meth:`repro.core.rng.SplitMix64.bit_subset` (each coefficient flips an
independent fair coin, one 64-bit word at a time).  Per-vertex decoding
state is an incremental Gaussian-elimination basis
(:class:`RankTracker`): pivot = highest set bit, so an insert is at
most ``rank`` XORs and completion detection is ``rank == n``.

Two engines, mirroring :mod:`repro.core.epidemic`:

* :func:`run_coded_gossip` — the research engine on arbitrary graphs:
  packets are *pure* random combinations of the sender's basis, which
  do not name any single message and therefore cannot be replayed
  through the possession-checking simulator (a receiver can hold the
  span of ``{m1 ^ m2, m2 ^ m3}`` without holding any ``m_i`` — there is
  a concrete 3-vertex counterexample in ``tests/core/test_coded.py``).
  Round structure, fault model and conflict rules are identical to the
  epidemic engine; only the payload algebra differs.
* :func:`systematic_coded_schedule` — the **systematic projection**
  registered as algorithm ``"coded"``: combinations are restricted to
  the unit messages the sender actually holds (support ⊆ holdings), and
  the scheduled label is a seeded-random element of the support, so the
  transcript is a model-valid :class:`~repro.core.schedule.Schedule`
  the strict engine, the linter and the lossy/chaos engines all accept.
  The receiver still runs genuine incremental elimination on the full
  combination, so rank completion arrives no later than unit-holding
  completion (and strictly earlier whenever a multi-unit combination is
  innovative beyond its label).

All randomness flows through :mod:`repro.core.rng`
(``scripts/check_conventions.py`` rule 6), with tags disjoint from both
the epidemic and the lossy-model streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ReproError
from ..networks.builders import tree_to_graph
from ..networks.graph import Graph
from ..simulator.lossy import FaultModel
from ..tree.labeling import LabeledTree
from .epidemic import (
    _random_bit,
    _resolve_receivers,
    _surviving_destinations,
    default_epidemic_horizon,
)
from .gossip import register_algorithm
from .rng import SplitMix64, keyed_u64
from .schedule import Round, Schedule, Transmission

__all__ = [
    "RankTracker",
    "CodedPacket",
    "CodedResult",
    "run_coded_gossip",
    "systematic_coded_schedule",
]

#: Seed used by the registry entry (see ``epidemic.REGISTRY_SEED``).
REGISTRY_SEED = 7

# Domain-separation tags (disjoint from epidemic 0xE4x and lossy tags).
_TAG_COMBO = 0xC0D1
_TAG_DEST = 0xC0D2
_TAG_ORDER = 0xC0D3
_TAG_LABEL = 0xC0D4


class RankTracker:
    """Incremental GF(2) Gaussian elimination over the message space.

    Rows are Python-int bitvectors; the basis maps pivot (highest set
    bit) to the unique stored row with that pivot.  :meth:`insert`
    reduces an incoming vector against the basis and reports whether it
    was *innovative* (increased the rank).
    """

    __slots__ = ("_basis",)

    def __init__(self) -> None:
        self._basis: Dict[int, int] = {}

    @property
    def rank(self) -> int:
        """Dimension of the span accumulated so far."""
        return len(self._basis)

    def insert(self, vector: int) -> bool:
        """Reduce ``vector`` into the basis; True iff it was innovative."""
        while vector:
            pivot = vector.bit_length() - 1
            row = self._basis.get(pivot)
            if row is None:
                self._basis[pivot] = vector
                return True
            vector ^= row
        return False

    def rows(self) -> Tuple[int, ...]:
        """Basis rows in descending pivot order (deterministic)."""
        return tuple(self._basis[p] for p in sorted(self._basis, reverse=True))

    def spans(self, vector: int) -> bool:
        """True iff ``vector`` lies in the accumulated span."""
        while vector:
            row = self._basis.get(vector.bit_length() - 1)
            if row is None:
                return False
            vector ^= row
        return True


@dataclass(frozen=True)
class CodedPacket:
    """One transmitted combination: ``coeffs`` bit ``m`` ⇔ message ``m``."""

    sender: int
    coeffs: int
    destinations: Tuple[int, ...]

    def words(self) -> Tuple[int, ...]:
        """The coefficient vector as packed little-endian uint64 words."""
        mask = (1 << 64) - 1
        out: List[int] = []
        c = self.coeffs
        while True:
            out.append(c & mask)
            c >>= 64
            if not c:
                return tuple(out)


@dataclass(frozen=True)
class CodedResult:
    """Outcome of one algebraic-gossip run (see module docstring)."""

    seed: int
    complete: bool
    rounds: int
    ranks: Tuple[int, ...]
    completion_times: Tuple[Optional[int], ...]
    packet_rounds: Tuple[Tuple[CodedPacket, ...], ...]
    packets_sent: int
    deliveries: int
    delivered: int
    innovative: int
    redundant: int
    lost: int
    suppressed_sends: int

    @property
    def completion_round(self) -> Optional[int]:
        """Latest per-vertex rank-``n`` time (``None`` when incomplete)."""
        if not self.complete:
            return None
        return max(t for t in self.completion_times if t is not None)

    @property
    def redundancy(self) -> float:
        """Fraction of received combinations that were non-innovative."""
        return self.redundant / self.delivered if self.delivered else 0.0


def _draw_combination(rng: SplitMix64, rows: Tuple[int, ...]) -> int:
    """A uniform random non-zero GF(2) combination of ``rows``.

    Each row joins with an independent fair coin; the all-zero draw
    falls back to a single random row so every packet carries
    information (the standard non-zero-combination convention).
    """
    subset = rng.bit_subset((1 << len(rows)) - 1)
    if subset == 0:
        return rows[rng.randrange(len(rows))]
    vector = 0
    while subset:
        low = subset & -subset
        vector ^= rows[low.bit_length() - 1]
        subset ^= low
    return vector


def run_coded_gossip(
    graph: Graph,
    *,
    seed: int = 0,
    fanout: int = 1,
    max_rounds: Optional[int] = None,
    model: Optional[FaultModel] = None,
) -> CodedResult:
    """Run algebraic gossip until every vertex reaches rank ``n``.

    Per round every vertex multicasts one uniform random non-zero GF(2)
    combination of its basis to ``fanout`` random neighbours, under the
    paper's one-send / one-receive round discipline (contested receivers
    resolved exactly as in the epidemic engine) and an optional seeded
    :class:`~repro.simulator.lossy.FaultModel` applied in the canonical
    lossy-engine hazard order.

    hot-loop-ok: the round loop *is* the protocol (data-dependent coin
    flips per vertex) — a baseline, not a planner hot path.
    """
    if fanout < 1:
        raise ReproError(f"fanout must be >= 1, got {fanout}")
    n = graph.n
    cap = default_epidemic_horizon(n) if max_rounds is None else max_rounds
    if cap < 0:
        raise ReproError(f"max_rounds must be >= 0, got {cap}")
    null_model = model is None or model.is_null

    trackers = [RankTracker() for _ in range(n)]
    for v in range(n):
        trackers[v].insert(1 << v)
    completion: List[Optional[int]] = [0 if n == 1 else None for _ in range(n)]
    pending: List[Tuple[int, int]] = []  # (receiver, coeffs)
    packet_rounds: List[Tuple[CodedPacket, ...]] = []
    packets_sent = deliveries = delivered = innovative = redundant = 0
    lost = suppressed = 0

    t = 0
    while True:
        for receiver, coeffs in pending:
            if trackers[receiver].insert(coeffs):
                innovative += 1
                if trackers[receiver].rank == n and completion[receiver] is None:
                    completion[receiver] = t
            else:
                redundant += 1
            delivered += 1
        pending = []
        if all(tr.rank == n for tr in trackers) or t >= cap:
            break

        intents: List[Tuple[int, int, Tuple[int, ...]]] = []
        for v in range(n):
            neigh = graph.neighbors(v)
            if not neigh:
                continue
            rng = SplitMix64(keyed_u64(seed, _TAG_COMBO, t, v))
            vector = _draw_combination(rng, trackers[v].rows())
            dest_rng = SplitMix64(keyed_u64(seed, _TAG_DEST, t, v))
            intents.append((v, vector, tuple(dest_rng.sample(neigh, fanout))))

        order_rng = SplitMix64(keyed_u64(seed, _TAG_ORDER, t))
        resolved = _resolve_receivers(intents, order_rng)
        packet_rounds.append(
            tuple(
                CodedPacket(sender=s, coeffs=c, destinations=d)
                for s, c, d in resolved
            )
        )
        for sender, coeffs, dests in resolved:
            packets_sent += 1
            deliveries += len(dests)
            if null_model:
                survivors: Optional[Sequence[int]] = dests
            else:
                assert model is not None
                survivors, lost_here = _surviving_destinations(model, t, sender, dests)
                lost += lost_here
            if survivors is None:
                suppressed += 1
                continue
            for d in survivors:
                pending.append((d, coeffs))
        t += 1

    return CodedResult(
        seed=seed,
        complete=all(tr.rank == n for tr in trackers),
        rounds=len(packet_rounds),
        ranks=tuple(tr.rank for tr in trackers),
        completion_times=tuple(completion),
        packet_rounds=tuple(packet_rounds),
        packets_sent=packets_sent,
        deliveries=deliveries,
        delivered=delivered,
        innovative=innovative,
        redundant=redundant,
        lost=lost,
        suppressed_sends=suppressed,
    )


def systematic_coded_schedule(
    graph: Graph,
    *,
    seed: int = 0,
    fanout: int = 1,
    max_rounds: Optional[int] = None,
    messages: Optional[Sequence[int]] = None,
) -> Schedule:
    """The systematic projection of coded gossip as a model-valid schedule.

    Combinations are restricted to unit messages the sender holds, the
    scheduled label is a seeded-random element of the support, and the
    run terminates when every vertex holds every unit (which implies
    rank ``n``: each acquired unit is inserted into the receiver's
    basis).  See the module docstring for why the *pure* algebraic
    engine cannot be projected this way.

    Raises :class:`~repro.exceptions.ReproError` on non-completion
    within the round budget (disconnected network).

    hot-loop-ok: baseline protocol loop, not a planner hot path.
    """
    if fanout < 1:
        raise ReproError(f"fanout must be >= 1, got {fanout}")
    n = graph.n
    origin = list(range(n)) if messages is None else [int(m) for m in messages]
    if len(origin) != n:
        raise ReproError(f"messages has {len(origin)} entries for n={n} processors")
    full = (1 << n) - 1
    holds = [0] * n
    trackers = [RankTracker() for _ in range(n)]
    for v, m in enumerate(origin):
        if not 0 <= m < n:
            raise ReproError(f"vertex {v} originates out-of-range message {m}")
        holds[v] |= 1 << m
        trackers[v].insert(1 << m)
    cap = default_epidemic_horizon(n) if max_rounds is None else max_rounds

    rounds: List[Round] = []
    pending: List[Tuple[int, int, int]] = []  # (receiver, label, coeffs)
    t = 0
    while True:
        for receiver, label, coeffs in pending:
            holds[receiver] |= 1 << label
            trackers[receiver].insert(1 << label)
            trackers[receiver].insert(coeffs)
        pending = []
        if all(h == full for h in holds) or t >= cap:
            break

        intents: List[Tuple[int, Tuple[int, int], Tuple[int, ...]]] = []
        for v in range(n):
            neigh = graph.neighbors(v)
            if not neigh:
                continue
            rng = SplitMix64(keyed_u64(seed, _TAG_COMBO, t, v))
            support = rng.bit_subset(holds[v])
            if support == 0:
                support = 1 << _random_bit(rng, holds[v])
            label_rng = SplitMix64(keyed_u64(seed, _TAG_LABEL, t, v))
            label = _random_bit(label_rng, support)
            dest_rng = SplitMix64(keyed_u64(seed, _TAG_DEST, t, v))
            intents.append(
                (v, (label, support), tuple(dest_rng.sample(neigh, fanout)))
            )

        order_rng = SplitMix64(keyed_u64(seed, _TAG_ORDER, t))
        txs: List[Transmission] = []
        for sender, (label, support), dests in _resolve_receivers(intents, order_rng):
            txs.append(Transmission(sender=sender, message=label, destinations=dests))
            for d in dests:
                pending.append((d, label, support))
        rounds.append(Round(txs))
        t += 1

    if not all(h == full for h in holds):
        raise ReproError(
            f"systematic coded gossip did not complete within {len(rounds)} "
            "rounds (disconnected network?)"
        )
    return Schedule(rounds, name=f"Coded-systematic(seed={seed})")


@register_algorithm("coded")
def coded_gossip(labeled: LabeledTree) -> Schedule:
    """Systematic coded gossip on the labelled spanning tree (DFS labels)."""
    return systematic_coded_schedule(
        tree_to_graph(labeled.tree),
        seed=REGISTRY_SEED,
        messages=labeled.labels(),
    )
