"""Algorithm UpDown (Gonzalez 2000 [15]) — two-phase reconstruction.

The paper describes UpDown by its phase structure and cost: a first
phase that propagates all messages to the root while already pushing
messages down, taking ``n - 1 + r`` steps, and a clean-up second phase
flushing "some messages that got stuck in the network", taking
``2(r - 1) + 1`` steps — total budget ``n + 3r - 2``.  ConcurrentUpDown
is then introduced as the observation that "all the operations can be
carried out in a single stage".

That sentence pins the reconstruction (full pseudo-code is in the
companion paper, which is not part of the supplied text — see
DESIGN.md): UpDown runs the *same* upward stream (U1–U4) and the same
cut-through downward stream (D2/D3), except that the two o-messages per
vertex that land on the busy (D3) slots ``i - k`` and ``i - k + 1`` are
not squeezed into the tight inline slots ``j - k + 1`` / ``j - k + 2``
(ConcurrentUpDown's single-stage trick) — they stay *stuck* until a
dedicated flush phase:

* **Phase 1** (the overlap of Propagate-Up and the non-stuck part of
  Propagate-Down): the root holds all messages by time ``n - 1``; every
  message except the stuck ones reaches everyone on the
  ConcurrentUpDown timetable.
* **Phase 2** (starting at ``T0 = n - 1 + r``): every vertex flushes its
  stuck queue and relays its ancestors' flushed messages at the first
  conflict-free slot.  A level-``k`` vertex relays at most ``2k``
  phase-2 messages, and the pipeline drains within ``2(r - 1) + 1``
  rounds — the paper's phase-2 budget.

The measured totals are checked against ``n + 3r - 2`` across topology
sweeps in the test suite and ``benchmarks/bench_updown_twophase.py``.

A *greedy* store-and-forward variant (no timetable, no lookahead) is
kept as :func:`~repro.core.store_forward.greedy_updown_gossip`; it is
the constructive fallback quantified by the no-lip ablation.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..tree.labeling import LabeledTree
from ..tree.tree import Tree
from ..types import Message, Time
from .gossip import register_algorithm
from .propagate_up import propagate_up_builder
from .schedule import Schedule

__all__ = ["updown_gossip", "updown_gossip_on_tree", "updown_total_time_bound"]


def updown_total_time_bound(n: int, height: int) -> int:
    """The paper's two-phase budget ``(n - 1 + r) + (2(r - 1) + 1)``.

    Equals ``n + 3r - 2``; degenerates to 0 for single-vertex trees.
    """
    if n <= 1:
        return 0
    return (n - 1 + height) + (2 * (height - 1) + 1)


@register_algorithm("updown")
def updown_gossip(labeled: LabeledTree) -> Schedule:
    """Build the two-phase UpDown schedule for a labelled tree.

    Phase 1 emits the Propagate-Up events plus the immediate (D2)/(D3)
    downward events; the per-vertex stuck messages are collected instead
    of being inlined.  Phase 2 flushes them level by level using
    explicit send/receive calendars, so the result is conflict-free by
    construction (and re-checked by the builder).
    """
    tree = labeled.tree
    n = labeled.n
    if n <= 1:
        return Schedule((), name="UpDown")

    builder = propagate_up_builder(labeled)
    # Calendars of *all* phase-1 activity, so phase 2 can slot around it.
    send_busy: List[Set[Time]] = [set() for _ in range(n)]
    recv_busy: List[Set[Time]] = [set() for _ in range(n)]
    _record_up_calendars(labeled, send_busy, recv_busy)

    stuck: Dict[int, List[Tuple[Time, Message]]] = {}
    down_sends: Dict[int, List[Tuple[Time, Message, frozenset]]] = {
        v: [] for v in range(n)
    }

    def emit(v: int, time: Time, message: Message, dests: Tuple[int, ...]) -> None:
        if dests:
            builder.send(time, v, message, dests)
            send_busy[v].add(time)
            for d in dests:
                recv_busy[d].add(time + 1)
            down_sends[v].append((time, message, frozenset(dests)))

    # ------------------------------------------------------------------
    # Phase 1 downward stream: (D3) plus immediate (D2); stuck held back.
    # ------------------------------------------------------------------
    for v in tree.bfs_order():
        kids = tree.children(v)
        if not kids:
            continue
        block = labeled.block(v)
        i, j, k = block.i, block.j, block.k
        for m in range(i, j + 1):
            if m == i:
                send_time = (j - k + 1) if i == k else (i - k)
                emit(v, send_time, m, kids)
            else:
                owner = labeled.owner_child(v, m)
                emit(v, m - k, m, tuple(c for c in kids if c != owner))
        if not tree.is_root(v):
            parent = tree.parent(v)
            arrivals = sorted(
                (t + 1, message)
                for (t, message, dests) in down_sends[parent]
                if v in dests
            )
            for arrival_time, m in arrivals:
                if arrival_time in (i - k, i - k + 1):
                    stuck.setdefault(v, []).append((arrival_time, m))
                else:
                    emit(v, arrival_time, m, kids)

    # ------------------------------------------------------------------
    # Phase 2: flush stuck messages from T0 = n - 1 + r downward.
    # ------------------------------------------------------------------
    t0 = (n - 1) + tree.height
    flushed_arrivals: Dict[int, List[Tuple[Time, Message]]] = {
        v: [] for v in range(n)
    }
    for v in tree.bfs_order():
        kids = tree.children(v)
        if not kids:
            continue
        items = sorted(
            [(max(t0, arrival), m) for arrival, m in stuck.get(v, [])]
            + flushed_arrivals[v]
        )
        for avail, m in items:
            t = avail
            while t in send_busy[v] or any(t + 1 in recv_busy[c] for c in kids):
                t += 1
            emit(v, t, m, kids)
            for c in kids:
                flushed_arrivals[c].append((t + 1, m))

    return builder.build(name="UpDown")


def _record_up_calendars(
    labeled: LabeledTree,
    send_busy: List[Set[Time]],
    recv_busy: List[Set[Time]],
) -> None:
    """Mark the (U3)/(U4) send and receive times in the calendars."""
    tree = labeled.tree
    for v in range(labeled.n):
        if tree.is_root(v):
            continue
        block = labeled.block(v)
        parent = tree.parent(v)
        if block.is_first_child:
            send_busy[v].add(0)
            recv_busy[parent].add(1)
        for m in range(block.i + block.w, block.j + 1):
            send_busy[v].add(m - block.k)
            recv_busy[parent].add(m - block.k + 1)


def updown_gossip_on_tree(tree: Tree) -> Schedule:
    """Convenience wrapper: label ``tree`` then run UpDown."""
    return updown_gossip(LabeledTree(tree))
