"""Exact optimal gossip search for tiny instances.

The gossiping decision problem is NP-hard in general, but on instances of
up to ~6 processors an exact search is feasible and serves two purposes
in the reproduction:

* certify *lower bounds* — e.g. that the odd path ``P_3`` needs
  ``n + r - 1 = 3`` rounds (Section 1's argument) and that ``N3`` cannot
  be gossiped in ``n - 1`` rounds under the telephone model (Fig. 3);
* measure ConcurrentUpDown's true optimality gap on small networks.

The search is iterative-deepening DFS over hold-set states with an
admissible heuristic: every processor still missing ``q`` messages needs
at least ``q`` more rounds (one receive per round), and a message must
travel at least the shortest-path distance from its nearest holder.

Round enumeration assigns each receiver either nothing or a
``(sender, message)`` pair such that senders stay single-message
(multicasting the same message to several receivers is one send) and,
under ``telephone=True``, single-receiver.  Deliveries of already-held
messages are never enumerated: duplicate receives cannot help because
hold sets grow monotonically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import ReproError
from ..networks.bfs import distance_matrix, require_connected
from ..networks.graph import Graph
from .schedule import Round, Schedule, Transmission

__all__ = ["minimum_gossip_time", "is_gossipable_within", "optimal_schedule"]

_MAX_EXACT_N = 7


def _heuristic(holds: Tuple[int, ...], full: int, dist: np.ndarray) -> int:
    """Admissible lower bound on the remaining rounds from ``holds``."""
    n = len(holds)
    best = 0
    for v in range(n):
        missing = full & ~holds[v]
        count = missing.bit_count()
        if count > best:
            best = count
        m = missing
        while m:
            low = m & -m
            msg = low.bit_length() - 1
            m ^= low
            # distance from v to the nearest current holder of msg
            nearest = min(
                int(dist[v][u]) for u in range(n) if holds[u] >> msg & 1
            )
            if nearest > best:
                best = nearest
    return best


def _enumerate_rounds(
    graph: Graph, holds: Tuple[int, ...], telephone: bool
) -> List[Tuple[Tuple[int, ...], List[Transmission]]]:
    """All useful next rounds as ``(new_holds, transmissions)``.

    Exponential — intended for ``n <= 7`` only.
    """
    n = graph.n
    receivers = [v for v in range(n) if any(
        holds[u] & ~holds[v] for u in graph.neighbors(v)
    )]
    results: List[Tuple[Tuple[int, ...], List[Transmission]]] = []
    # committed: sender -> (message, receiver-list)
    committed: Dict[int, Tuple[int, List[int]]] = {}

    def recurse(idx: int) -> None:
        if idx == len(receivers):
            if not committed:
                return
            new_holds = list(holds)
            txs: List[Transmission] = []
            for sender, (message, dests) in committed.items():
                txs.append(
                    Transmission(
                        sender=sender,
                        message=message,
                        destinations=frozenset(dests),
                    )
                )
                for d in dests:
                    new_holds[d] |= 1 << message
            results.append((tuple(new_holds), txs))
            return
        v = receivers[idx]
        # Option: receive nothing.
        recurse(idx + 1)
        # Option: receive (sender, message).
        seen: set = set()
        for u in graph.neighbors(v):
            useful = holds[u] & ~holds[v]
            m = useful
            while m:
                low = m & -m
                msg = low.bit_length() - 1
                m ^= low
                if (u, msg) in seen:
                    continue
                seen.add((u, msg))
                if u in committed:
                    prev_msg, prev_dests = committed[u]
                    if prev_msg != msg or telephone:
                        continue
                    prev_dests.append(v)
                    recurse(idx + 1)
                    prev_dests.pop()
                else:
                    committed[u] = (msg, [v])
                    recurse(idx + 1)
                    del committed[u]

    recurse(0)
    return results


def minimum_gossip_time(
    graph: Graph, telephone: bool = False, upper_limit: Optional[int] = None
) -> int:
    """The exact optimal total communication time for gossiping.

    Raises :class:`ReproError` for ``n > 7`` (search space explodes) or
    when ``upper_limit`` is given and no schedule meets it.
    """
    require_connected(graph, "gossiping")
    n = graph.n
    if n > _MAX_EXACT_N:
        raise ReproError(f"exact search supports n <= {_MAX_EXACT_N}, got {n}")
    if n == 1:
        return 0
    full = (1 << n) - 1
    dist = distance_matrix(graph)
    start = tuple(1 << v for v in range(n))
    limit_cap = upper_limit if upper_limit is not None else 2 * n + n
    depth = _heuristic(start, full, dist)
    while depth <= limit_cap:
        if _search(graph, start, full, dist, depth, telephone, {}):
            return depth
        depth += 1
    raise ReproError(
        f"no gossip schedule within {limit_cap} rounds "
        f"({'telephone' if telephone else 'multicast'} model)"
    )


def _search(
    graph: Graph,
    holds: Tuple[int, ...],
    full: int,
    dist: np.ndarray,
    budget: int,
    telephone: bool,
    visited: Dict[Tuple[int, ...], int],
) -> bool:
    """Depth-limited DFS: can gossip finish within ``budget`` rounds?"""
    if all(h == full for h in holds):
        return True
    h = _heuristic(holds, full, dist)
    if h > budget:
        return False
    prior = visited.get(holds)
    if prior is not None and prior >= budget:
        return False
    visited[holds] = budget
    options = _enumerate_rounds(graph, holds, telephone)
    # Explore most-progress-first: more new bits = likely shorter.
    options.sort(
        key=lambda item: -sum(x.bit_count() for x in item[0])
    )
    for new_holds, _txs in options:
        if _search(graph, new_holds, full, dist, budget - 1, telephone, visited):
            return True
    return False


def is_gossipable_within(
    graph: Graph, rounds: int, telephone: bool = False
) -> bool:
    """Whether some schedule finishes within ``rounds`` rounds."""
    require_connected(graph, "gossiping")
    if graph.n > _MAX_EXACT_N:
        raise ReproError(f"exact search supports n <= {_MAX_EXACT_N}")
    if graph.n == 1:
        return True
    full = (1 << graph.n) - 1
    dist = distance_matrix(graph)
    start = tuple(1 << v for v in range(graph.n))
    return _search(graph, start, full, dist, rounds, telephone, {})


def optimal_schedule(graph: Graph, telephone: bool = False) -> Schedule:
    """An optimal schedule, reconstructed from the exact search.

    Runs :func:`minimum_gossip_time` then re-traces one optimal path,
    recording the chosen rounds.
    """
    opt = minimum_gossip_time(graph, telephone=telephone)
    full = (1 << graph.n) - 1
    dist = distance_matrix(graph)
    holds = tuple(1 << v for v in range(graph.n))
    rounds: List[Round] = []
    budget = opt
    while not all(h == full for h in holds):
        options = _enumerate_rounds(graph, holds, telephone)
        options.sort(key=lambda item: -sum(x.bit_count() for x in item[0]))
        advanced = False
        for new_holds, txs in options:
            if _search(graph, new_holds, full, dist, budget - 1, telephone, {}):
                rounds.append(Round(txs))
                holds = new_holds
                budget -= 1
                advanced = True
                break
        if not advanced:  # pragma: no cover - cannot happen if opt is right
            raise ReproError("failed to re-trace the optimal schedule")
    return Schedule(rounds, name=f"optimal-{'tel' if telephone else 'mc'}")
