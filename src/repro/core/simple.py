"""Procedure Simple (paper Section 3.2, Lemma 1).

The baseline tree-gossiping procedure: first pipeline every message up to
the root so that message ``m >= 1`` reaches the root exactly at time
``m``; once the collection is complete (time ``n - 1``), pump all ``n``
messages down the tree in label order, every vertex relaying to its
children in the round after it receives.

Timing:

* up: the message labelled ``m`` originating at level ``k_m`` is sent by
  its level-``l`` ancestor at time ``m - l`` — each vertex's up-sends
  occupy distinct times, so there are no conflicts;
* down: the root multicasts message ``m`` to all its children at time
  ``n - 2 + m``; a level-``k`` vertex relays it at time ``n - 2 + m + k``.

The last delivery is message ``n - 1`` reaching level ``r`` at time
``2n + r - 3`` — Lemma 1's exact total communication time, independent of
the tree's shape beyond ``n`` and ``r``.  The down phase naively
multicasts to *all* children (the originating subtree included), so the
schedule contains duplicate deliveries; they are legal, and the metrics
module counts them to quantify Simple's waste against ConcurrentUpDown.
"""

from __future__ import annotations

from ..tree.labeling import LabeledTree
from ..tree.tree import Tree
from .gossip import register_algorithm
from .schedule import Schedule, ScheduleBuilder

__all__ = ["simple_gossip", "simple_gossip_on_tree", "simple_total_time"]


def simple_total_time(n: int, height: int) -> int:
    """Lemma 1's closed form ``2n + r - 3`` (0 for a single vertex)."""
    if n <= 1:
        return 0
    return 2 * n + height - 3


@register_algorithm("simple")
def simple_gossip(labeled: LabeledTree) -> Schedule:
    """Build procedure Simple's schedule for a labelled tree."""
    builder = ScheduleBuilder()
    tree = labeled.tree
    n = labeled.n
    if n <= 1:
        return builder.build(name="Simple")

    # Up phase: message m climbs one level per round, timed to reach the
    # root at time m.  The ancestor at level l sends it at time m - l.
    for v in range(n):
        if tree.is_root(v):
            continue
        m = labeled.label_of(v)
        ancestor = v
        level = tree.level(v)
        while ancestor != tree.root:
            builder.send(m - level, ancestor, m, (tree.parent(ancestor),))
            ancestor = tree.parent(ancestor)
            level -= 1

    # Down phase: the root starts message m at time n - 2 + m; every
    # internal vertex relays to all children one level per round.
    for v in range(n):
        kids = tree.children(v)
        if not kids:
            continue
        k = tree.level(v)
        for m in range(n):
            builder.send(n - 2 + m + k, v, m, kids)
    return builder.build(name="Simple")


def simple_gossip_on_tree(tree: Tree) -> Schedule:
    """Convenience wrapper: label ``tree`` then run Simple."""
    return simple_gossip(LabeledTree(tree))
