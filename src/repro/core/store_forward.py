"""Policy-driven store-and-forward gossip scheduling.

A small offline scheduling engine: rounds are built one at a time; in
each round every processor *proposes* one (message, destinations)
multicast chosen by a pluggable policy from its current hold set, and a
deterministic arbiter resolves receive conflicts (each processor accepts
at most one incoming message per round, per the model).  Proposals are
processed in ascending (message label, sender) order, so lower-labelled
messages win contended receivers — the same label-ordered pipelining
principle the paper's algorithms hard-code analytically.

Three policies are provided:

* :class:`GreedyMulticastPolicy` — send the lowest-labelled held message
  some neighbour still lacks, to *all* such neighbours.  A strong generic
  baseline for the comparison benchmarks.
* :class:`TelephonePolicy` — the same, restricted to a single receiver:
  the telephone (unicast) communication model the paper contrasts with.
* :class:`UpDownTreePolicy` — the reconstruction of Gonzalez's two-phase
  UpDown algorithm [15] (the paper gives only its phase structure and
  bound, not its pseudo-code — see DESIGN.md): body messages stream
  toward the root with strict label priority, piggybacking the downward
  distribution to siblings, and o-messages are relayed down whenever the
  upward stream leaves the send slot idle.  Unlike ConcurrentUpDown it
  has no lookahead (lip) trick, so messages do get stuck and finish later
  than ``n + r``; tests check it stays within the paper's
  ``(n - 1 + r) + (2(r - 1) + 1)`` two-phase budget.

Progress guarantee: while gossip is incomplete and the network connected,
some holder of a missing message neighbours a non-holder; the
first-processed such proposal always wins its receiver, so every round
delivers at least one new message and the engine needs at most
``n * (n - 1)`` rounds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from ..exceptions import SimulationError
from ..networks.builders import tree_to_graph
from ..networks.graph import Graph
from ..simulator.state import HoldState, labeled_holdings
from ..tree.labeling import LabeledTree
from .gossip import register_algorithm
from .schedule import Round, Schedule, Transmission

__all__ = [
    "SendPolicy",
    "GreedyMulticastPolicy",
    "TelephonePolicy",
    "UpDownTreePolicy",
    "store_forward_schedule",
    "greedy_multicast_gossip",
    "greedy_updown_gossip",
    "telephone_gossip",
    "telephone_gossip_on_graph",
    "greedy_gossip_on_graph",
]

#: A proposal: (message, candidate destinations in preference order).
Proposal = Tuple[int, Sequence[int]]


class SendPolicy(Protocol):
    """Chooses what each processor offers to send in the current round."""

    def propose(
        self, vertex: int, state: HoldState, graph: Graph, time: int
    ) -> Optional[Proposal]:
        """Return ``(message, destinations)`` or ``None`` to stay silent.

        ``destinations`` must be neighbours of ``vertex``; the arbiter
        trims it to the receivers still free this round and drops the
        proposal entirely if none remain.
        """
        ...

    def propose_ranked(
        self, vertex: int, state: HoldState, graph: Graph, time: int
    ) -> List[Proposal]:
        """Proposals in decreasing preference; the arbiter falls back to
        the next one when a higher-preference proposal wins no receiver.
        The default adapter wraps :meth:`propose` into a one-element list.
        """
        ...


class GreedyMulticastPolicy:
    """Multicast the lowest-labelled held message a neighbour lacks."""

    def propose(
        self, vertex: int, state: HoldState, graph: Graph, time: int
    ) -> Optional[Proposal]:
        neighbours = graph.neighbors(vertex)
        lacking_union = 0
        hold = state.hold_set(vertex)
        for u in neighbours:
            lacking_union |= hold & ~state.hold_set(u)
        if not lacking_union:
            return None
        message = (lacking_union & -lacking_union).bit_length() - 1
        dests = [u for u in neighbours if not state.holds(u, message)]
        return (message, dests)


class TelephonePolicy:
    """The unicast restriction: one receiver per send (telephone model)."""

    def __init__(self) -> None:
        self._inner = GreedyMulticastPolicy()

    def propose(
        self, vertex: int, state: HoldState, graph: Graph, time: int
    ) -> Optional[Proposal]:
        proposal = self._inner.propose(vertex, state, graph, time)
        if proposal is None:
            return None
        message, dests = proposal
        # Keep the full preference list; the arbiter's unicast truncation
        # (max_fan_out=1) picks the first still-free receiver.
        return (message, dests)


class UpDownTreePolicy:
    """UpDown reconstruction: label-ordered up-stream, idle-slot down-stream.

    Must be used on the tree network of the :class:`LabeledTree` it was
    built from (vertex ids and message labels must correspond).  The
    ranked interface matters here: a vertex whose upward send loses the
    parent's receive slot to a sibling falls back to relaying a message
    down instead of idling — the concurrency that gives UpDown its
    ``n - 1 + r`` first phase.
    """

    def __init__(self, labeled: LabeledTree) -> None:
        self._labeled = labeled

    def propose_ranked(
        self, vertex: int, state: HoldState, graph: Graph, time: int
    ) -> List[Proposal]:
        labeled = self._labeled
        tree = labeled.tree
        block = labeled.block(vertex)
        hold = state.hold_set(vertex)
        kids = tree.children(vertex)
        ranked: List[Proposal] = []
        # Preference 1 — upward: lowest held body message the parent
        # lacks; piggyback the downward distribution of the same message
        # to lacking children.
        if not tree.is_root(vertex):
            parent = tree.parent(vertex)
            body_mask = ((1 << (block.j + 1)) - 1) ^ ((1 << block.i) - 1)
            pending_up = hold & body_mask & ~state.hold_set(parent)
            if pending_up:
                message = (pending_up & -pending_up).bit_length() - 1
                dests = [parent] + [c for c in kids if not state.holds(c, message)]
                ranked.append((message, dests))
        # Preference 2 — downward: lowest held message some child lacks.
        lacking_union = 0
        for c in kids:
            lacking_union |= hold & ~state.hold_set(c)
        if lacking_union:
            message = (lacking_union & -lacking_union).bit_length() - 1
            ranked.append(
                (message, [c for c in kids if not state.holds(c, message)])
            )
        return ranked

    def propose(
        self, vertex: int, state: HoldState, graph: Graph, time: int
    ) -> Optional[Proposal]:
        ranked = self.propose_ranked(vertex, state, graph, time)
        return ranked[0] if ranked else None


def store_forward_schedule(
    graph: Graph,
    policy: SendPolicy,
    initial_holds: Optional[Sequence[int]] = None,
    max_fan_out: Optional[int] = None,
    max_rounds: Optional[int] = None,
    name: str = "store-forward",
) -> Schedule:
    """Run the round-building loop until gossip completes.

    Parameters
    ----------
    graph:
        The (connected) network.
    policy:
        The per-vertex send policy.
    initial_holds:
        Initial hold bitsets (default: processor ``v`` holds message ``v``).
    max_fan_out:
        Cap on receivers per multicast; ``1`` yields the telephone model.
    max_rounds:
        Safety valve; defaults to ``n * n`` (far above the progress bound).
    """
    n = graph.n
    state = HoldState(n, initial=initial_holds)
    limit = n * n if max_rounds is None else max_rounds
    rounds: List[Round] = []
    pending: List[Tuple[int, int]] = []  # (receiver, message) applied next round
    time = 0
    while not state.all_complete():
        if time > limit:
            raise SimulationError(
                f"store-and-forward did not finish within {limit} rounds"
            )
        for receiver, message in pending:
            state.deliver(receiver, message, time)
        pending = []
        if state.all_complete():
            break
        ranked_by_vertex: Dict[int, List[Proposal]] = {}
        for v in range(n):
            if hasattr(policy, "propose_ranked"):
                ranked = policy.propose_ranked(v, state, graph, time)
            else:
                p = policy.propose(v, state, graph, time)
                ranked = [p] if p is not None else []
            ranked = [(m, d) for (m, d) in ranked if d]
            if ranked:
                ranked_by_vertex[v] = ranked
        taken = [False] * n
        granted_sender = [False] * n
        txs: List[Transmission] = []
        max_rank = max((len(r) for r in ranked_by_vertex.values()), default=0)
        for rank in range(max_rank):
            # Senders still empty-handed try their rank-th preference,
            # lower message labels first.
            tier = sorted(
                (ranked_by_vertex[v][rank][0], v, ranked_by_vertex[v][rank][1])
                for v in ranked_by_vertex
                if not granted_sender[v] and rank < len(ranked_by_vertex[v])
            )
            for message, sender, dests in tier:
                granted = [d for d in dests if not taken[d]]
                if max_fan_out is not None:
                    granted = granted[:max_fan_out]
                if not granted:
                    continue
                for d in granted:
                    taken[d] = True
                granted_sender[sender] = True
                txs.append(
                    Transmission(
                        sender=sender, message=message, destinations=frozenset(granted)
                    )
                )
                pending.extend((d, message) for d in granted)
        rounds.append(Round(txs))
        time += 1
    return Schedule(rounds, name=name)


# ----------------------------------------------------------------------
# Registry-compatible wrappers (LabeledTree -> Schedule, DFS-label ids)
# ----------------------------------------------------------------------
@register_algorithm("greedy")
def greedy_multicast_gossip(labeled: LabeledTree) -> Schedule:
    """Greedy multicast store-and-forward gossip on the tree network."""
    return store_forward_schedule(
        tree_to_graph(labeled.tree),
        GreedyMulticastPolicy(),
        initial_holds=labeled_holdings(labeled.labels()),
        name="Greedy",
    )


@register_algorithm("updown-greedy")
def greedy_updown_gossip(labeled: LabeledTree) -> Schedule:
    """Greedy no-lookahead up/down gossip (the no-lip ablation fallback).

    Uses :class:`UpDownTreePolicy` — adaptive rather than timetabled, so
    it may beat or lose to the fixed algorithms on individual trees; its
    role is quantifying what the (U3) lookahead buys (see
    :mod:`repro.core.ablations`).
    """
    return store_forward_schedule(
        tree_to_graph(labeled.tree),
        UpDownTreePolicy(labeled),
        initial_holds=labeled_holdings(labeled.labels()),
        name="UpDown-greedy",
    )


@register_algorithm("telephone")
def telephone_gossip(labeled: LabeledTree) -> Schedule:
    """Telephone-model (unicast) gossip on the tree network."""
    return store_forward_schedule(
        tree_to_graph(labeled.tree),
        TelephonePolicy(),
        initial_holds=labeled_holdings(labeled.labels()),
        max_fan_out=1,
        name="Telephone",
    )


def telephone_gossip_on_graph(graph: Graph) -> Schedule:
    """Telephone-model gossip directly on an arbitrary network."""
    return store_forward_schedule(
        graph, TelephonePolicy(), max_fan_out=1, name="Telephone"
    )


def greedy_gossip_on_graph(graph: Graph) -> Schedule:
    """Greedy multicast gossip directly on an arbitrary network."""
    return store_forward_schedule(graph, GreedyMulticastPolicy(), name="Greedy")
