"""Per-vertex communication timelines (the paper's Tables 1–4).

The paper illustrates ConcurrentUpDown with four tables, one per selected
vertex of the Fig. 5 tree, each showing four rows indexed by time:
*Receive from Parent*, *Receive from Child*, *Send to Parent*, and
*Send to Child(ren)*.  :func:`vertex_timeline` extracts exactly those
rows from any schedule, given the tree that orients parent/child.

Convention (matching the paper): a message *sent* during round ``t``
appears in the send rows at time ``t`` and in the receiver's receive rows
at time ``t + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.schedule import Schedule
from ..exceptions import UnknownTimelineRowError
from ..tree.tree import Tree
from ..types import Message, Time, Vertex

__all__ = ["VertexTimeline", "vertex_timeline", "all_timelines"]


@dataclass
class VertexTimeline:
    """The four table rows of one vertex, as ``time -> message`` maps.

    ``horizon`` is the largest time index that carries an entry in any
    row (the table's last column).
    """

    vertex: Vertex
    receive_from_parent: Dict[Time, Message] = field(default_factory=dict)
    receive_from_child: Dict[Time, Message] = field(default_factory=dict)
    send_to_parent: Dict[Time, Message] = field(default_factory=dict)
    send_to_child: Dict[Time, Message] = field(default_factory=dict)

    @property
    def horizon(self) -> int:
        """Last time index with any entry (-1 when all rows are empty)."""
        times = [
            t
            for row in (
                self.receive_from_parent,
                self.receive_from_child,
                self.send_to_parent,
                self.send_to_child,
            )
            for t in row
        ]
        return max(times) if times else -1

    def row(self, name: str) -> Dict[Time, Message]:
        """Access a row by its paper caption (case/space insensitive)."""
        key = name.lower().replace(" ", "_")
        aliases = {
            "receive_from_parent": self.receive_from_parent,
            "receive_from_child": self.receive_from_child,
            "send_to_parent": self.send_to_parent,
            "send_to_child": self.send_to_child,
            "send_to_children": self.send_to_child,
        }
        if key not in aliases:
            raise UnknownTimelineRowError(f"unknown timeline row {name!r}")
        return aliases[key]

    def as_lists(self, horizon: Optional[int] = None) -> Dict[str, List[Optional[int]]]:
        """Dense row lists (``None`` = the paper's '-' cells), for rendering."""
        h = self.horizon if horizon is None else horizon
        out: Dict[str, List[Optional[int]]] = {}
        for caption, row in (
            ("Receive from Parent", self.receive_from_parent),
            ("Receive from Child", self.receive_from_child),
            ("Send to Parent", self.send_to_parent),
            ("Send to Child", self.send_to_child),
        ):
            out[caption] = [row.get(t) for t in range(h + 1)]
        return out


def vertex_timeline(tree: Tree, schedule: Schedule, vertex: Vertex) -> VertexTimeline:
    """Extract the paper-style timeline of ``vertex`` from ``schedule``.

    Only transmissions along tree edges incident to ``vertex`` are
    recorded (for the paper's algorithms that is all of them).
    """
    tl = VertexTimeline(vertex=vertex)
    parent = tree.parent(vertex)
    children = set(tree.children(vertex))
    for t, rnd in enumerate(schedule):
        for tx in rnd:
            if tx.sender == vertex:
                if parent in tx.destinations:
                    tl.send_to_parent[t] = tx.message
                if children & tx.destinations:
                    tl.send_to_child[t] = tx.message
            elif vertex in tx.destinations:
                if tx.sender == parent:
                    tl.receive_from_parent[t + 1] = tx.message
                elif tx.sender in children:
                    tl.receive_from_child[t + 1] = tx.message
    return tl


def all_timelines(tree: Tree, schedule: Schedule) -> List[VertexTimeline]:
    """Timelines of every vertex, indexed by vertex id."""
    return [vertex_timeline(tree, schedule, v) for v in range(tree.n)]
