"""Schedule and execution metrics for the benchmark reports.

Beyond the paper's single figure of merit — total communication time —
downstream users care about how *busy* the network is: how many
multicasts happen, how large their fan-out is, how evenly links are
loaded, and how much of Simple's traffic is redundant.  This module
computes all of that from a schedule plus (optionally) an execution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.schedule import Schedule
from ..networks.graph import Graph
from .engine import ExecutionResult

__all__ = ["ScheduleMetrics", "compute_metrics", "link_loads"]


@dataclass(frozen=True)
class ScheduleMetrics:
    """Aggregate statistics of one schedule (and optional execution).

    Attributes
    ----------
    total_time:
        Number of rounds (the paper's objective).
    total_multicasts:
        Number of (message, sender, D) tuples across all rounds.
    total_deliveries:
        Sum of fan-outs — point-to-point message hops.
    max_fan_out / mean_fan_out:
        Multicast width statistics (1.0 everywhere = telephone traffic).
    busiest_link_load:
        Most deliveries carried by a single undirected link.
    duplicate_deliveries:
        Deliveries of already-held messages (needs an execution).
    mean_completion_time / max_completion_time:
        Per-processor completion statistics (needs a *complete* execution).
    """

    total_time: int
    total_multicasts: int
    total_deliveries: int
    max_fan_out: int
    mean_fan_out: float
    busiest_link_load: int
    duplicate_deliveries: Optional[int] = None
    mean_completion_time: Optional[float] = None
    max_completion_time: Optional[int] = None

    @property
    def redundancy(self) -> Optional[float]:
        """Fraction of deliveries that were duplicates (None w/o execution)."""
        if self.duplicate_deliveries is None or self.total_deliveries == 0:
            return None
        return self.duplicate_deliveries / self.total_deliveries


def link_loads(schedule: Schedule) -> Dict[Tuple[int, int], int]:
    """Deliveries per undirected link ``(min, max) -> count``."""
    loads: Counter = Counter()
    for rnd in schedule:
        for tx in rnd:
            for d in tx.destinations:
                key = (tx.sender, d) if tx.sender < d else (d, tx.sender)
                loads[key] += 1
    return dict(loads)


def compute_metrics(
    schedule: Schedule,
    execution: Optional[ExecutionResult] = None,
    graph: Optional[Graph] = None,
) -> ScheduleMetrics:
    """Compute :class:`ScheduleMetrics` for ``schedule``.

    ``graph`` is unused today but reserved for per-degree normalisation;
    passing an ``execution`` enables the duplicate/completion fields.
    """
    multicasts = schedule.total_messages()
    deliveries = schedule.total_deliveries()
    loads = link_loads(schedule)
    completion: Optional[list] = None
    duplicates: Optional[int] = None
    if execution is not None:
        duplicates = execution.duplicate_deliveries
        if execution.complete:
            completion = [t for t in execution.completion_times if t is not None]
    return ScheduleMetrics(
        total_time=schedule.total_time,
        total_multicasts=multicasts,
        total_deliveries=deliveries,
        max_fan_out=schedule.max_fan_out(),
        mean_fan_out=(deliveries / multicasts) if multicasts else 0.0,
        busiest_link_load=max(loads.values()) if loads else 0,
        duplicate_deliveries=duplicates,
        mean_completion_time=(sum(completion) / len(completion)) if completion else None,
        max_completion_time=max(completion) if completion else None,
    )
