"""Lossy execution — running schedules under a runtime fault model.

:mod:`repro.simulator.faults` perturbs *schedules* to prove the
validator catches malformed input; this module instead perturbs the
*execution*: the schedule is perfectly legal, but the network drops
deliveries, links blink out for whole rounds, and processors crash for
transient windows.  This is the regime the related gossip literature
(pipelined gossiping, algebraic gossip) actually targets, and the
substrate :mod:`repro.core.recovery` repairs on top of.

Determinism is the load-bearing property.  Every fault decision is a
pure function of ``(model.seed, kind, round, endpoints)`` through a
splitmix64-style mixer, so:

* a run is byte-for-byte reproducible for a fixed seed, on any platform,
  regardless of iteration order;
* *extending* a schedule (appending repair rounds) replays the original
  prefix identically — the recovery loop relies on this to re-execute
  the full repaired schedule and land in exactly the state it diagnosed;
* a retransmission of the same delivery in a *later* round gets a fresh
  , independent draw (the round index is part of the hash), so repair
  attempts are not doomed to repeat the original loss.

A fault-free model (:attr:`FaultModel.is_null`) takes the exact
:func:`~repro.simulator.engine.execute_schedule` code path semantics:
every observable field of the result matches bit for bit (property-
tested in ``tests/property/test_property_lossy.py``).

Fault semantics, applied to the round sent at time ``t``:

* **sender crash** — a processor inside a crash window at ``t`` sends
  nothing; its whole multicast is suppressed;
* **possession gap** — a sender that (because of earlier losses) does
  not hold the scheduled message sends nothing; in a lossy world this
  is not a model violation, it is a consequence of the faults, and it
  is recorded as a suppressed send.  Adjacency violations are still
  hard errors: faults never excuse a malformed schedule;
* **link outage** — a link down for round ``t`` loses every delivery
  crossing it that round;
* **receiver crash** — a processor inside a crash window at ``t``
  receives nothing that round;
* **delivery drop** — each surviving delivery is lost independently
  with probability ``drop_rate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.schedule import Schedule
from ..exceptions import ModelViolationError, SimulationError
from ..networks.graph import Graph
from .engine import ArrivalEvent, ExecutionResult
from .state import HoldState, bits_of

__all__ = [
    "FaultModel",
    "LostDelivery",
    "SuppressedSend",
    "FaultyExecutionResult",
    "execute_with_faults",
]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15

# Domain-separation tags so a delivery draw never collides with a link
# or crash draw at the same coordinates.
_TAG_DROP = 0xD09
_TAG_LINK = 0x11F
_TAG_CRASH = 0xC9A


def _mix64(x: int) -> int:
    """splitmix64 finaliser — a high-quality 64-bit avalanche."""
    x = (x + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _uniform(seed: int, tag: int, *coords: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` keyed by the coordinates."""
    h = _mix64(seed & _MASK64)
    h = _mix64(h ^ tag)
    for c in coords:
        h = _mix64(h ^ ((c + 1) * _GOLDEN & _MASK64))
    return h / 2.0**64


@dataclass(frozen=True)
class FaultModel:
    """A seeded, deterministic runtime fault model.

    Attributes
    ----------
    seed:
        Root seed; every fault decision is a pure function of it.
    drop_rate:
        Independent per-delivery loss probability.
    link_outage_rate:
        Per-round, per-link probability that the link is down for that
        whole round (all deliveries crossing it are lost).
    crash_rate:
        Per-round, per-processor probability that a transient crash
        window *starts* that round.
    crash_length:
        Length of a crash window in rounds; while crashed a processor
        neither sends nor receives.
    """

    seed: int = 0
    drop_rate: float = 0.0
    link_outage_rate: float = 0.0
    crash_rate: float = 0.0
    crash_length: int = 1

    def __post_init__(self) -> None:
        for name in ("drop_rate", "link_outage_rate", "crash_rate"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise SimulationError(f"{name}={p} is not a probability")
        if self.crash_length < 1:
            raise SimulationError("crash_length must be >= 1")

    @property
    def is_null(self) -> bool:
        """Whether this model can never inject a fault."""
        return (
            self.drop_rate == 0.0
            and self.link_outage_rate == 0.0
            and self.crash_rate == 0.0
        )

    # ------------------------------------------------------------------
    def drops_delivery(self, time: int, sender: int, receiver: int) -> bool:
        """Whether the delivery ``sender -> receiver`` sent at ``time`` is lost."""
        if self.drop_rate == 0.0:
            return False
        return _uniform(self.seed, _TAG_DROP, time, sender, receiver) < self.drop_rate

    def link_out(self, time: int, u: int, v: int) -> bool:
        """Whether the (undirected) link ``{u, v}`` is down for round ``time``."""
        if self.link_outage_rate == 0.0:
            return False
        a, b = (u, v) if u < v else (v, u)
        return _uniform(self.seed, _TAG_LINK, time, a, b) < self.link_outage_rate

    def crashed(self, time: int, v: int) -> bool:
        """Whether processor ``v`` is inside a crash window at round ``time``."""
        if self.crash_rate == 0.0:
            return False
        for start in range(max(0, time - self.crash_length + 1), time + 1):
            if _uniform(self.seed, _TAG_CRASH, start, v) < self.crash_rate:
                return True
        return False


@dataclass(frozen=True)
class LostDelivery:
    """One point-to-point delivery destroyed by the fault model.

    ``time`` is the send time (the delivery would have landed at
    ``time + 1``); ``reason`` is one of ``"drop"``, ``"link-outage"``,
    ``"receiver-crash"``.
    """

    time: int
    receiver: int
    sender: int
    message: int
    reason: str


@dataclass(frozen=True)
class SuppressedSend:
    """One whole multicast that never happened.

    ``reason`` is ``"sender-crash"`` (the sender was inside a crash
    window) or ``"not-held"`` (earlier losses left the sender without
    the scheduled message — a cascading fault, not a model violation).
    """

    time: int
    sender: int
    message: int
    reason: str


@dataclass
class FaultyExecutionResult:
    """Everything observable about one lossy execution.

    The first six attributes mirror
    :class:`~repro.simulator.engine.ExecutionResult` exactly (and match
    it bit for bit under a null model); the rest record what the fault
    model did, plus enough context (``model``, ``initial_holds``,
    ``n_messages``) for :func:`repro.core.recovery.recover` to re-execute
    and repair without re-supplying the run's parameters.
    """

    complete: bool
    total_time: int
    completion_times: List[Optional[int]]
    duplicate_deliveries: int
    final_holds: List[int]
    arrivals: List[ArrivalEvent] = field(default_factory=list)
    lost: Tuple[LostDelivery, ...] = ()
    suppressed: Tuple[SuppressedSend, ...] = ()
    model: FaultModel = field(default_factory=FaultModel)
    initial_holds: Tuple[int, ...] = ()
    n_messages: int = 0

    @property
    def faults_injected(self) -> int:
        """Total deliveries lost plus multicasts suppressed."""
        return len(self.lost) + len(self.suppressed)

    def missing_sets(self) -> Dict[int, List[int]]:
        """Per-processor missing message ids (incomplete processors only)."""
        full = (1 << self.n_messages) - 1
        return {
            v: bits_of(full & ~h)
            for v, h in enumerate(self.final_holds)
            if h != full
        }

    def to_execution_result(self) -> ExecutionResult:
        """The fault-agnostic view (what the fault-free engine reports)."""
        return ExecutionResult(
            complete=self.complete,
            total_time=self.total_time,
            completion_times=list(self.completion_times),
            duplicate_deliveries=self.duplicate_deliveries,
            final_holds=list(self.final_holds),
            arrivals=list(self.arrivals),
        )


def execute_with_faults(
    graph: Graph,
    schedule: Schedule,
    model: FaultModel,
    initial_holds: Optional[Sequence[int]] = None,
    n_messages: Optional[int] = None,
    record_arrivals: bool = False,
) -> FaultyExecutionResult:
    """Run ``schedule`` on ``graph`` while ``model`` injects faults.

    The loop mirrors :func:`~repro.simulator.engine.execute_schedule`
    (receive-before-send, deliveries land one round after sending) with
    the fault semantics described in the module docstring.  Under a null
    model the result matches ``execute_schedule`` on every field.

    Raises
    ------
    ModelViolationError
        A transmission targets a non-neighbour.  Possession gaps caused
        by earlier losses are *not* violations — they suppress the send
        and are recorded in :attr:`FaultyExecutionResult.suppressed`.
    """
    state = HoldState(
        graph.n,
        initial=initial_holds,
        n_messages=n_messages,
        track_arrivals=record_arrivals,
    )
    init_snapshot = tuple(state.snapshot())
    arrivals: List[ArrivalEvent] = []
    lost: List[LostDelivery] = []
    suppressed: List[SuppressedSend] = []
    pending: List[Tuple[int, int, int]] = []  # (receiver, sender, message)
    neighbour_sets: Dict[int, frozenset] = {}
    null_model = model.is_null

    for t, rnd in enumerate(schedule):
        for receiver, sender, message in pending:
            state.deliver(receiver, message, t)
            if record_arrivals:
                arrivals.append(ArrivalEvent(t, receiver, sender, message))
        pending = []
        for tx in rnd:
            neighbours = neighbour_sets.get(tx.sender)
            if neighbours is None:
                neighbours = frozenset(graph.neighbors(tx.sender))
                neighbour_sets[tx.sender] = neighbours
            for d in tx.destinations:
                if d not in neighbours:
                    raise ModelViolationError(
                        f"at time {t} processor {tx.sender} multicasts to {d}, "
                        "which is not an adjacent processor"
                    )
            if not null_model and model.crashed(t, tx.sender):
                suppressed.append(
                    SuppressedSend(t, tx.sender, tx.message, "sender-crash")
                )
                continue
            if not state.holds(tx.sender, tx.message):
                # Cascading fault: an earlier loss starved this sender.
                suppressed.append(
                    SuppressedSend(t, tx.sender, tx.message, "not-held")
                )
                continue
            for d in tx.destinations:
                if not null_model:
                    if model.link_out(t, tx.sender, d):
                        lost.append(
                            LostDelivery(t, d, tx.sender, tx.message, "link-outage")
                        )
                        continue
                    if model.crashed(t, d):
                        lost.append(
                            LostDelivery(t, d, tx.sender, tx.message, "receiver-crash")
                        )
                        continue
                    if model.drops_delivery(t, tx.sender, d):
                        lost.append(
                            LostDelivery(t, d, tx.sender, tx.message, "drop")
                        )
                        continue
                pending.append((d, tx.sender, tx.message))
    final_time = schedule.total_time
    for receiver, sender, message in pending:
        state.deliver(receiver, message, final_time)
        if record_arrivals:
            arrivals.append(ArrivalEvent(final_time, receiver, sender, message))

    return FaultyExecutionResult(
        complete=state.all_complete(),
        total_time=final_time,
        completion_times=state.completion_times(),
        duplicate_deliveries=state.duplicate_deliveries,
        final_holds=state.snapshot(),
        arrivals=arrivals,
        lost=tuple(lost),
        suppressed=tuple(suppressed),
        model=model,
        initial_holds=init_snapshot,
        n_messages=state.n_messages,
    )
