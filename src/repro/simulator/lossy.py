"""Lossy execution — running schedules under a runtime fault model.

:mod:`repro.simulator.faults` perturbs *schedules* to prove the
validator catches malformed input; this module instead perturbs the
*execution*: the schedule is perfectly legal, but the network drops
deliveries, links blink out for whole rounds, and processors crash for
transient windows.  This is the regime the related gossip literature
(pipelined gossiping, algebraic gossip) actually targets, and the
substrate :mod:`repro.core.recovery` repairs on top of.

Determinism is the load-bearing property.  Every fault decision is a
pure function of ``(model.seed, kind, round, endpoints)`` through a
splitmix64-style mixer, so:

* a run is byte-for-byte reproducible for a fixed seed, on any platform,
  regardless of iteration order;
* *extending* a schedule (appending repair rounds) replays the original
  prefix identically — the recovery loop relies on this to re-execute
  the full repaired schedule and land in exactly the state it diagnosed;
* a retransmission of the same delivery in a *later* round gets a fresh
  , independent draw (the round index is part of the hash), so repair
  attempts are not doomed to repeat the original loss.

A fault-free model (:attr:`FaultModel.is_null`) takes the exact
:func:`~repro.simulator.engine.execute_schedule` code path semantics:
every observable field of the result matches bit for bit (property-
tested in ``tests/property/test_property_lossy.py``).

Fault semantics, applied to the round sent at time ``t``:

* **sender fail-stop** — a processor that permanently crashed at or
  before ``t`` sends nothing, ever again;
* **sender crash** — a processor inside a transient crash window at
  ``t`` sends nothing; its whole multicast is suppressed;
* **possession gap** — a sender that (because of earlier losses) does
  not hold the scheduled message sends nothing; in a lossy world this
  is not a model violation, it is a consequence of the faults, and it
  is recorded as a suppressed send.  Adjacency violations are still
  hard errors: faults never excuse a malformed schedule;
* **receiver fail-stop** — a processor that permanently crashed at or
  before ``t`` receives nothing, ever again;
* **link failure** — a link that permanently failed at or before ``t``
  loses every delivery crossing it from then on;
* **link outage** — a link down for round ``t`` loses every delivery
  crossing it that round;
* **receiver crash** — a processor inside a transient crash window at
  ``t`` receives nothing that round;
* **delivery drop** — each surviving delivery is lost independently
  with probability ``drop_rate``.

Permanent failures (``fail_stop_rate`` / ``link_fail_rate``) are
*per-round hazards*: at every round each live processor (each intact
link) independently fail-stops with the given probability, and once the
first failing round is drawn the processor (link) stays dead for the
rest of the run.  Hazard draws are pure functions of
``(seed, round, endpoints)`` like every other fault decision, so the
determinism contract above carries over unchanged — extending a
schedule never rewrites who died in the prefix.  Both checks are
evaluated *at send time* (a delivery in flight when its receiver dies
still lands), matching the transient-crash convention.

The residual network after permanent failures is what
:mod:`repro.core.survival` diagnoses and replans over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.schedule import Schedule
from ..exceptions import ModelViolationError, SimulationError
from ..networks.graph import Graph
from .engine import ArrivalEvent, ExecutionResult
from .state import HoldState, bits_of

__all__ = [
    "FaultModel",
    "LostDelivery",
    "SuppressedSend",
    "FaultyExecutionResult",
    "execute_with_faults",
]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15

# Domain-separation tags so a delivery draw never collides with a link
# or crash draw at the same coordinates.
_TAG_DROP = 0xD09
_TAG_LINK = 0x11F
_TAG_CRASH = 0xC9A
_TAG_FAIL_STOP = 0xF57
_TAG_LINK_FAIL = 0x1F1


def _mix64(x: int) -> int:
    """splitmix64 finaliser — a high-quality 64-bit avalanche."""
    x = (x + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _uniform(seed: int, tag: int, *coords: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` keyed by the coordinates."""
    h = _mix64(seed & _MASK64)
    h = _mix64(h ^ tag)
    for c in coords:
        h = _mix64(h ^ ((c + 1) * _GOLDEN & _MASK64))
    return h / 2.0**64


@dataclass(frozen=True)
class FaultModel:
    """A seeded, deterministic runtime fault model.

    Attributes
    ----------
    seed:
        Root seed; every fault decision is a pure function of it.
    drop_rate:
        Independent per-delivery loss probability.
    link_outage_rate:
        Per-round, per-link probability that the link is down for that
        whole round (all deliveries crossing it are lost).
    crash_rate:
        Per-round, per-processor probability that a transient crash
        window *starts* that round.
    crash_length:
        Length of a crash window in rounds; while crashed a processor
        neither sends nor receives.
    fail_stop_rate:
        Per-round, per-processor probability that the processor
        *permanently* crashes that round (a fail-stop failure: once
        crashed it never sends or receives again).
    link_fail_rate:
        Per-round, per-link probability that the link *permanently*
        fails that round (every later delivery crossing it is lost).
    """

    seed: int = 0
    drop_rate: float = 0.0
    link_outage_rate: float = 0.0
    crash_rate: float = 0.0
    crash_length: int = 1
    fail_stop_rate: float = 0.0
    link_fail_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "drop_rate",
            "link_outage_rate",
            "crash_rate",
            "fail_stop_rate",
            "link_fail_rate",
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise SimulationError(f"{name}={p} is not a probability")
        if self.crash_length < 1:
            raise SimulationError("crash_length must be >= 1")
        # Determinism-preserving memo caches (never part of the value:
        # excluded from dataclass eq/hash/repr).  Every cached entry is a
        # pure function of the frozen fields, so a cache hit and a fresh
        # draw are indistinguishable.
        object.__setattr__(self, "_crash_window_starts", {})
        object.__setattr__(self, "_fail_stop_first", {})
        object.__setattr__(self, "_fail_stop_scanned", {})
        object.__setattr__(self, "_link_fail_first", {})
        object.__setattr__(self, "_link_fail_scanned", {})

    @property
    def is_null(self) -> bool:
        """Whether this model can never inject a fault."""
        return (
            self.drop_rate == 0.0
            and self.link_outage_rate == 0.0
            and self.crash_rate == 0.0
            and self.fail_stop_rate == 0.0
            and self.link_fail_rate == 0.0
        )

    @property
    def has_permanent(self) -> bool:
        """Whether the model can kill processors or links for good.

        Permanent failures invalidate the recovery contract ("a nearest
        holder always exists"); :func:`repro.core.recovery.recover`
        checks this to diagnose partitions *before* spending its repair
        budget, and :mod:`repro.core.survival` is the layer that handles
        the residue.
        """
        return self.fail_stop_rate > 0.0 or self.link_fail_rate > 0.0

    # ------------------------------------------------------------------
    def drops_delivery(self, time: int, sender: int, receiver: int) -> bool:
        """Whether the delivery ``sender -> receiver`` sent at ``time`` is lost."""
        if self.drop_rate == 0.0:
            return False
        return _uniform(self.seed, _TAG_DROP, time, sender, receiver) < self.drop_rate

    def link_out(self, time: int, u: int, v: int) -> bool:
        """Whether the (undirected) link ``{u, v}`` is down for round ``time``."""
        if self.link_outage_rate == 0.0:
            return False
        a, b = (u, v) if u < v else (v, u)
        return _uniform(self.seed, _TAG_LINK, time, a, b) < self.link_outage_rate

    def crashed(self, time: int, v: int) -> bool:
        """Whether processor ``v`` is inside a transient crash window at ``time``.

        Window-start draws are memoised per ``(start, v)``: the per-round
        execution hot path queries overlapping windows for every sender
        and every delivery target, and without the cache each query
        re-hashed ``crash_length`` seeds.
        """
        if self.crash_rate == 0.0:
            return False
        starts = self._crash_window_starts
        for start in range(max(0, time - self.crash_length + 1), time + 1):
            key = (start, v)
            hit = starts.get(key)
            if hit is None:
                hit = _uniform(self.seed, _TAG_CRASH, start, v) < self.crash_rate
                starts[key] = hit
            if hit:
                return True
        return False

    def fail_stopped(self, time: int, v: int) -> bool:
        """Whether processor ``v`` has permanently crashed by round ``time``.

        Monotone in ``time``: once true it stays true forever.  The scan
        for the first failing round is incremental and memoised, so a
        sweep over rounds ``0..T`` costs at most ``T + 1`` hash draws per
        processor in total.
        """
        if self.fail_stop_rate == 0.0:
            return False
        first = self._fail_stop_first.get(v)
        if first is not None:
            return first <= time
        start = self._fail_stop_scanned.get(v, 0)
        for t in range(start, time + 1):
            if _uniform(self.seed, _TAG_FAIL_STOP, t, v) < self.fail_stop_rate:
                self._fail_stop_first[v] = t
                return True
        self._fail_stop_scanned[v] = time + 1
        return False

    def link_failed(self, time: int, u: int, v: int) -> bool:
        """Whether the link ``{u, v}`` has permanently failed by ``time``.

        Monotone in ``time`` and symmetric in the endpoints, with the
        same memoised incremental scan as :meth:`fail_stopped`.
        """
        if self.link_fail_rate == 0.0:
            return False
        key = (u, v) if u < v else (v, u)
        first = self._link_fail_first.get(key)
        if first is not None:
            return first <= time
        start = self._link_fail_scanned.get(key, 0)
        for t in range(start, time + 1):
            if _uniform(self.seed, _TAG_LINK_FAIL, t, *key) < self.link_fail_rate:
                self._link_fail_first[key] = t
                return True
        self._link_fail_scanned[key] = time + 1
        return False


@dataclass(frozen=True)
class LostDelivery:
    """One point-to-point delivery destroyed by the fault model.

    ``time`` is the send time (the delivery would have landed at
    ``time + 1``); ``reason`` is one of ``"drop"``, ``"link-outage"``,
    ``"receiver-crash"``, ``"receiver-fail-stop"``, ``"link-fail"``.
    """

    time: int
    receiver: int
    sender: int
    message: int
    reason: str


@dataclass(frozen=True)
class SuppressedSend:
    """One whole multicast that never happened.

    ``reason`` is ``"sender-fail-stop"`` (the sender permanently
    crashed), ``"sender-crash"`` (the sender was inside a transient
    crash window) or ``"not-held"`` (earlier losses left the sender
    without the scheduled message — a cascading fault, not a model
    violation).
    """

    time: int
    sender: int
    message: int
    reason: str


@dataclass
class FaultyExecutionResult:
    """Everything observable about one lossy execution.

    The first six attributes mirror
    :class:`~repro.simulator.engine.ExecutionResult` exactly (and match
    it bit for bit under a null model); the rest record what the fault
    model did, plus enough context (``model``, ``initial_holds``,
    ``n_messages``) for :func:`repro.core.recovery.recover` to re-execute
    and repair without re-supplying the run's parameters.
    """

    complete: bool
    total_time: int
    completion_times: List[Optional[int]]
    duplicate_deliveries: int
    final_holds: List[int]
    arrivals: List[ArrivalEvent] = field(default_factory=list)
    lost: Tuple[LostDelivery, ...] = ()
    suppressed: Tuple[SuppressedSend, ...] = ()
    model: FaultModel = field(default_factory=FaultModel)
    initial_holds: Tuple[int, ...] = ()
    n_messages: int = 0

    @property
    def faults_injected(self) -> int:
        """Total deliveries lost plus multicasts suppressed."""
        return len(self.lost) + len(self.suppressed)

    def missing_sets(self) -> Dict[int, List[int]]:
        """Per-processor missing message ids (incomplete processors only)."""
        full = (1 << self.n_messages) - 1
        return {
            v: bits_of(full & ~h)
            for v, h in enumerate(self.final_holds)
            if h != full
        }

    def to_execution_result(self) -> ExecutionResult:
        """The fault-agnostic view (what the fault-free engine reports)."""
        return ExecutionResult(
            complete=self.complete,
            total_time=self.total_time,
            completion_times=list(self.completion_times),
            duplicate_deliveries=self.duplicate_deliveries,
            final_holds=list(self.final_holds),
            arrivals=list(self.arrivals),
        )


def execute_with_faults(
    graph: Graph,
    schedule: Schedule,
    model: FaultModel,
    initial_holds: Optional[Sequence[int]] = None,
    n_messages: Optional[int] = None,
    record_arrivals: bool = False,
) -> FaultyExecutionResult:
    """Run ``schedule`` on ``graph`` while ``model`` injects faults.

    The loop mirrors :func:`~repro.simulator.engine.execute_schedule`
    (receive-before-send, deliveries land one round after sending) with
    the fault semantics described in the module docstring.  Under a null
    model the result matches ``execute_schedule`` on every field.

    Raises
    ------
    ModelViolationError
        A transmission targets a non-neighbour.  Possession gaps caused
        by earlier losses are *not* violations — they suppress the send
        and are recorded in :attr:`FaultyExecutionResult.suppressed`.
    """
    state = HoldState(
        graph.n,
        initial=initial_holds,
        n_messages=n_messages,
        track_arrivals=record_arrivals,
    )
    init_snapshot = tuple(state.snapshot())
    arrivals: List[ArrivalEvent] = []
    lost: List[LostDelivery] = []
    suppressed: List[SuppressedSend] = []
    pending: List[Tuple[int, int, int]] = []  # (receiver, sender, message)
    neighbour_sets: Dict[int, frozenset] = {}
    null_model = model.is_null

    for t, rnd in enumerate(schedule):
        for receiver, sender, message in pending:
            state.deliver(receiver, message, t)
            if record_arrivals:
                arrivals.append(ArrivalEvent(t, receiver, sender, message))
        pending = []
        for tx in rnd:
            neighbours = neighbour_sets.get(tx.sender)
            if neighbours is None:
                neighbours = frozenset(graph.neighbors(tx.sender))
                neighbour_sets[tx.sender] = neighbours
            for d in tx.destinations:
                if d not in neighbours:
                    raise ModelViolationError(
                        f"at time {t} processor {tx.sender} multicasts to {d}, "
                        "which is not an adjacent processor"
                    )
            if not null_model:
                if model.fail_stopped(t, tx.sender):
                    suppressed.append(
                        SuppressedSend(t, tx.sender, tx.message, "sender-fail-stop")
                    )
                    continue
                if model.crashed(t, tx.sender):
                    suppressed.append(
                        SuppressedSend(t, tx.sender, tx.message, "sender-crash")
                    )
                    continue
            if not state.holds(tx.sender, tx.message):
                # Cascading fault: an earlier loss starved this sender.
                suppressed.append(
                    SuppressedSend(t, tx.sender, tx.message, "not-held")
                )
                continue
            for d in tx.destinations:
                if not null_model:
                    if model.fail_stopped(t, d):
                        lost.append(
                            LostDelivery(
                                t, d, tx.sender, tx.message, "receiver-fail-stop"
                            )
                        )
                        continue
                    if model.link_failed(t, tx.sender, d):
                        lost.append(
                            LostDelivery(t, d, tx.sender, tx.message, "link-fail")
                        )
                        continue
                    if model.link_out(t, tx.sender, d):
                        lost.append(
                            LostDelivery(t, d, tx.sender, tx.message, "link-outage")
                        )
                        continue
                    if model.crashed(t, d):
                        lost.append(
                            LostDelivery(t, d, tx.sender, tx.message, "receiver-crash")
                        )
                        continue
                    if model.drops_delivery(t, tx.sender, d):
                        lost.append(
                            LostDelivery(t, d, tx.sender, tx.message, "drop")
                        )
                        continue
                pending.append((d, tx.sender, tx.message))
    final_time = schedule.total_time
    for receiver, sender, message in pending:
        state.deliver(receiver, message, final_time)
        if record_arrivals:
            arrivals.append(ArrivalEvent(final_time, receiver, sender, message))

    return FaultyExecutionResult(
        complete=state.all_complete(),
        total_time=final_time,
        completion_times=state.completion_times(),
        duplicate_deliveries=state.duplicate_deliveries,
        final_holds=state.snapshot(),
        arrivals=arrivals,
        lost=tuple(lost),
        suppressed=tuple(suppressed),
        model=model,
        initial_holds=init_snapshot,
        n_messages=state.n_messages,
    )
