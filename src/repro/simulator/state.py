"""Hold-set state for the synchronous simulator.

Each processor's hold set ``h_i`` (the messages it has) is a Python
integer used as a bitset: bit ``m`` set means message ``m`` is held.
Bitsets make the per-round bookkeeping O(1) amortised per delivery and
the "who is complete" test a single comparison with ``(1 << n) - 1`` —
far cheaper than per-message Python sets when ``n`` runs into the
thousands in the scaling benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..exceptions import SimulationError
from ..types import Message, Vertex

__all__ = ["HoldState", "identity_holdings", "labeled_holdings"]


def identity_holdings(n: int) -> List[int]:
    """Initial hold sets where processor ``v`` holds message ``v``."""
    return [1 << v for v in range(n)]


def labeled_holdings(labels: Sequence[int]) -> List[int]:
    """Initial hold sets where processor ``v`` holds message ``labels[v]``.

    This is the right initial state after DFS labelling: the message ids
    in a schedule produced by the core algorithms are DFS labels, and the
    vertex with label ``m`` is the one that starts with message ``m``.
    """
    return [1 << int(lbl) for lbl in labels]


class HoldState:
    """Mutable hold sets of all ``n`` processors for ``n_messages`` messages.

    Tracks, besides the raw bitsets, the first time each processor became
    *complete* (holds every message) and the number of duplicate
    deliveries (a processor receiving a message it already had — legal in
    the model, but a waste the metrics report).
    """

    __slots__ = (
        "n",
        "n_messages",
        "_full",
        "_holds",
        "_completion_time",
        "_duplicates",
        "_arrival_time",
    )

    def __init__(
        self,
        n: int,
        initial: Optional[Sequence[int]] = None,
        n_messages: Optional[int] = None,
        track_arrivals: bool = False,
    ) -> None:
        if n < 1:
            raise SimulationError("need at least one processor")
        self.n = n
        self.n_messages = n if n_messages is None else n_messages
        self._full = (1 << self.n_messages) - 1
        holds = list(identity_holdings(n) if initial is None else map(int, initial))
        if len(holds) != n:
            raise SimulationError(
                f"initial holdings has {len(holds)} entries for n={n} processors"
            )
        for v, h in enumerate(holds):
            if h & ~self._full:
                raise SimulationError(
                    f"processor {v} initially holds a message >= n_messages"
                )
        self._holds = holds
        self._completion_time: List[Optional[int]] = [
            0 if h == self._full else None for h in holds
        ]
        self._duplicates = 0
        # arrival_time[v][m] = first time message m was present at v.
        self._arrival_time: Optional[List[Dict[int, int]]] = None
        if track_arrivals:
            self._arrival_time = [
                {m: 0 for m in bits_of(h)} for h in holds
            ]

    # ------------------------------------------------------------------
    def holds(self, v: Vertex, m: Message) -> bool:
        """Whether processor ``v`` currently holds message ``m``."""
        return bool(self._holds[v] >> m & 1)

    def hold_set(self, v: Vertex) -> int:
        """The raw bitset of processor ``v``."""
        return self._holds[v]

    def messages_of(self, v: Vertex) -> List[int]:
        """Sorted list of messages held by ``v``."""
        return bits_of(self._holds[v])

    def missing_of(self, v: Vertex) -> List[int]:
        """Sorted list of messages ``v`` still lacks."""
        return bits_of(self._full & ~self._holds[v])

    def deliver(self, v: Vertex, m: Message, time: int) -> None:
        """Add message ``m`` to processor ``v`` at ``time``."""
        if not 0 <= m < self.n_messages:
            raise SimulationError(f"message {m} out of range")
        bit = 1 << m
        if self._holds[v] & bit:
            self._duplicates += 1
            return
        self._holds[v] |= bit
        if self._arrival_time is not None:
            self._arrival_time[v][m] = time
        if self._holds[v] == self._full and self._completion_time[v] is None:
            self._completion_time[v] = time

    def is_complete(self, v: Vertex) -> bool:
        """Whether ``v`` holds every message."""
        return self._holds[v] == self._full

    def all_complete(self) -> bool:
        """Whether every processor holds every message (gossip done)."""
        return all(h == self._full for h in self._holds)

    def completion_time(self, v: Vertex) -> Optional[int]:
        """First time ``v`` held all messages, or ``None`` if it never did."""
        return self._completion_time[v]

    def completion_times(self) -> List[Optional[int]]:
        """Per-processor completion times."""
        return list(self._completion_time)

    def arrival_time(self, v: Vertex, m: Message) -> Optional[int]:
        """First time message ``m`` was at ``v`` (needs ``track_arrivals``)."""
        if self._arrival_time is None:
            raise SimulationError("arrival tracking was not enabled")
        return self._arrival_time[v].get(m)

    @property
    def duplicate_deliveries(self) -> int:
        """Count of deliveries of already-held messages."""
        return self._duplicates

    def snapshot(self) -> List[int]:
        """Copy of all hold bitsets."""
        return list(self._holds)


def bits_of(bitset: int) -> List[int]:
    """Indices of the set bits of ``bitset``, ascending."""
    out: List[int] = []
    m = bitset
    while m:
        low = m & -m
        out.append(low.bit_length() - 1)
        m ^= low
    return out


def popcount(bitset: int) -> int:
    """Number of set bits (messages held)."""
    return bitset.bit_count()


def union_all(bitsets: Iterable[int]) -> int:
    """Union of several hold sets."""
    acc = 0
    for b in bitsets:
        acc |= b
    return acc
