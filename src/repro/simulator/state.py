"""Hold-set state for the synchronous simulator.

Each processor's hold set ``h_i`` (the messages it has) is a Python
integer used as a bitset: bit ``m`` set means message ``m`` is held.
Bitsets make the per-round bookkeeping O(1) amortised per delivery and
the "who is complete" test a single comparison with ``(1 << n) - 1`` —
far cheaper than per-message Python sets when ``n`` runs into the
thousands in the scaling benchmarks.

:class:`PackedHoldState` is the array-native mirror of the same state:
all ``n`` hold sets in one ``(n, ceil(n_messages / 64))`` uint64 matrix,
updated one *round* at a time straight from an
:class:`~repro.core.schedule.ArraySchedule`'s flat delivery stream
(word/bit convention identical to the destination masks: message ``m``
is bit ``m % 64`` of word ``m // 64``).  The two representations are
kept honest against each other by :meth:`PackedHoldState.assert_parity`,
which compares ``int.bit_count()`` per processor and then exact bitset
equality with the object path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..exceptions import SimulationError
from ..types import Message, Vertex

__all__ = [
    "HoldState",
    "PackedHoldState",
    "identity_holdings",
    "labeled_holdings",
]


def identity_holdings(n: int) -> List[int]:
    """Initial hold sets where processor ``v`` holds message ``v``."""
    return [1 << v for v in range(n)]


def labeled_holdings(labels: Sequence[int]) -> List[int]:
    """Initial hold sets where processor ``v`` holds message ``labels[v]``.

    This is the right initial state after DFS labelling: the message ids
    in a schedule produced by the core algorithms are DFS labels, and the
    vertex with label ``m`` is the one that starts with message ``m``.
    """
    return [1 << int(lbl) for lbl in labels]


class HoldState:
    """Mutable hold sets of all ``n`` processors for ``n_messages`` messages.

    Tracks, besides the raw bitsets, the first time each processor became
    *complete* (holds every message) and the number of duplicate
    deliveries (a processor receiving a message it already had — legal in
    the model, but a waste the metrics report).
    """

    __slots__ = (
        "n",
        "n_messages",
        "_full",
        "_holds",
        "_completion_time",
        "_duplicates",
        "_arrival_time",
    )

    def __init__(
        self,
        n: int,
        initial: Optional[Sequence[int]] = None,
        n_messages: Optional[int] = None,
        track_arrivals: bool = False,
    ) -> None:
        if n < 1:
            raise SimulationError("need at least one processor")
        self.n = n
        self.n_messages = n if n_messages is None else n_messages
        self._full = (1 << self.n_messages) - 1
        holds = list(identity_holdings(n) if initial is None else map(int, initial))
        if len(holds) != n:
            raise SimulationError(
                f"initial holdings has {len(holds)} entries for n={n} processors"
            )
        for v, h in enumerate(holds):
            if h & ~self._full:
                raise SimulationError(
                    f"processor {v} initially holds a message >= n_messages"
                )
        self._holds = holds
        self._completion_time: List[Optional[int]] = [
            0 if h == self._full else None for h in holds
        ]
        self._duplicates = 0
        # arrival_time[v][m] = first time message m was present at v.
        self._arrival_time: Optional[List[Dict[int, int]]] = None
        if track_arrivals:
            self._arrival_time = [
                {m: 0 for m in bits_of(h)} for h in holds
            ]

    # ------------------------------------------------------------------
    def holds(self, v: Vertex, m: Message) -> bool:
        """Whether processor ``v`` currently holds message ``m``."""
        return bool(self._holds[v] >> m & 1)

    def hold_set(self, v: Vertex) -> int:
        """The raw bitset of processor ``v``."""
        return self._holds[v]

    def messages_of(self, v: Vertex) -> List[int]:
        """Sorted list of messages held by ``v``."""
        return bits_of(self._holds[v])

    def missing_of(self, v: Vertex) -> List[int]:
        """Sorted list of messages ``v`` still lacks."""
        return bits_of(self._full & ~self._holds[v])

    def deliver(self, v: Vertex, m: Message, time: int) -> None:
        """Add message ``m`` to processor ``v`` at ``time``."""
        if not 0 <= m < self.n_messages:
            raise SimulationError(f"message {m} out of range")
        bit = 1 << m
        if self._holds[v] & bit:
            self._duplicates += 1
            return
        self._holds[v] |= bit
        if self._arrival_time is not None:
            self._arrival_time[v][m] = time
        if self._holds[v] == self._full and self._completion_time[v] is None:
            self._completion_time[v] = time

    def is_complete(self, v: Vertex) -> bool:
        """Whether ``v`` holds every message."""
        return self._holds[v] == self._full

    def all_complete(self) -> bool:
        """Whether every processor holds every message (gossip done)."""
        return all(h == self._full for h in self._holds)

    def completion_time(self, v: Vertex) -> Optional[int]:
        """First time ``v`` held all messages, or ``None`` if it never did."""
        return self._completion_time[v]

    def completion_times(self) -> List[Optional[int]]:
        """Per-processor completion times."""
        return list(self._completion_time)

    def arrival_time(self, v: Vertex, m: Message) -> Optional[int]:
        """First time message ``m`` was at ``v`` (needs ``track_arrivals``)."""
        if self._arrival_time is None:
            raise SimulationError("arrival tracking was not enabled")
        return self._arrival_time[v].get(m)

    @property
    def duplicate_deliveries(self) -> int:
        """Count of deliveries of already-held messages."""
        return self._duplicates

    def snapshot(self) -> List[int]:
        """Copy of all hold bitsets."""
        return list(self._holds)


class PackedHoldState:
    """All hold sets as one ``(n, words)`` uint64 matrix.

    The vectorised counterpart of :class:`HoldState` for the simulator's
    array fast path: one :meth:`deliver_round` call applies a whole
    round's deliveries, and possession of a batch of (sender, message)
    pairs is a single fancy-indexed gather.  Completion times and
    duplicate-delivery counts match :class:`HoldState` exactly — the
    differential tests drive both and call :meth:`assert_parity`.

    Within one round each receiver gets at most one delivery (the
    model's Rule 1, enforced when the schedule's destination masks are
    validated), which is what makes the plain scatter in
    :meth:`deliver_round` safe.
    """

    __slots__ = (
        "n",
        "n_messages",
        "words",
        "_holds",
        "_full_row",
        "_completion_time",
        "_duplicates",
    )

    def __init__(
        self,
        n: int,
        initial: Optional[Sequence[int]] = None,
        n_messages: Optional[int] = None,
    ) -> None:
        if n < 1:
            raise SimulationError("need at least one processor")
        self.n = n
        self.n_messages = n if n_messages is None else n_messages
        self.words = (self.n_messages + 63) // 64
        full = (1 << self.n_messages) - 1
        holds = list(identity_holdings(n) if initial is None else map(int, initial))
        if len(holds) != n:
            raise SimulationError(
                f"initial holdings has {len(holds)} entries for n={n} processors"
            )
        self._holds = np.zeros((n, self.words), dtype=np.uint64)
        for v, h in enumerate(holds):
            if h & ~full:
                raise SimulationError(
                    f"processor {v} initially holds a message >= n_messages"
                )
            w = 0
            while h:
                self._holds[v, w] = h & 0xFFFFFFFFFFFFFFFF
                h >>= 64
                w += 1
        self._full_row = np.zeros(self.words, dtype=np.uint64)
        w = 0
        while full:
            self._full_row[w] = full & 0xFFFFFFFFFFFFFFFF
            full >>= 64
            w += 1
        self._completion_time = np.full(n, -1, dtype=np.int64)
        self._completion_time[
            np.all(self._holds == self._full_row, axis=1)
        ] = 0
        self._duplicates = 0

    # ------------------------------------------------------------------
    def holds_mask(
        self, senders: np.ndarray, messages: np.ndarray
    ) -> np.ndarray:
        """Boolean per pair: does ``senders[i]`` hold ``messages[i]``?"""
        word = messages >> 6
        bit = np.left_shift(np.uint64(1), (messages & 63).astype(np.uint64))
        return (self._holds[senders, word] & bit) != 0

    def deliver_round(
        self, receivers: np.ndarray, messages: np.ndarray, time: int
    ) -> None:
        """Apply one round's deliveries (receivers distinct per Rule 1)."""
        if not len(receivers):
            return
        word = messages >> 6
        bit = np.left_shift(np.uint64(1), (messages & 63).astype(np.uint64))
        cur = self._holds[receivers, word]
        dup = (cur & bit) != 0
        self._duplicates += int(dup.sum())
        self._holds[receivers, word] = cur | bit
        fresh = receivers[~dup]
        if len(fresh):
            cand = fresh[self._completion_time[fresh] < 0]
            if len(cand):
                done = np.all(self._holds[cand] == self._full_row, axis=1)
                self._completion_time[cand[done]] = time

    # ------------------------------------------------------------------
    def row_int(self, v: Vertex) -> int:
        """Processor ``v``'s hold set as a Python-int bitset."""
        return int.from_bytes(
            self._holds[v].astype("<u8").tobytes(), "little"
        )

    def messages_of(self, v: Vertex) -> List[int]:
        """Sorted list of messages held by ``v``."""
        return bits_of(self.row_int(v))

    def missing_of(self, v: Vertex) -> List[int]:
        """Sorted list of messages ``v`` still lacks."""
        full = (1 << self.n_messages) - 1
        return bits_of(full & ~self.row_int(v))

    def is_complete(self, v: Vertex) -> bool:
        """Whether ``v`` holds every message."""
        return bool(np.array_equal(self._holds[v], self._full_row))

    def all_complete(self) -> bool:
        """Whether every processor holds every message (gossip done)."""
        return bool(np.all(self._holds == self._full_row))

    def completion_times(self) -> List[Optional[int]]:
        """Per-processor completion times (``None`` if never complete)."""
        return [int(t) if t >= 0 else None for t in self._completion_time]

    @property
    def duplicate_deliveries(self) -> int:
        """Count of deliveries of already-held messages."""
        return self._duplicates

    def snapshot(self) -> List[int]:
        """All hold sets as Python-int bitsets (:class:`HoldState` form)."""
        return [self.row_int(v) for v in range(self.n)]

    def assert_parity(self, reference: "HoldState") -> None:
        """Assert bit-for-bit agreement with an object-path hold state.

        Checks ``int.bit_count()`` per processor first (the cheap
        invariant: both paths delivered the same *number* of messages)
        and then exact bitset equality, so a failure message names the
        processor where the two paths diverged.
        """
        theirs = reference.snapshot()
        assert len(theirs) == self.n, (
            f"packed state has {self.n} processors, reference {len(theirs)}"
        )
        for v, ref in enumerate(theirs):
            mine = self.row_int(v)
            assert mine.bit_count() == ref.bit_count(), (
                f"processor {v}: packed path holds {mine.bit_count()} messages, "
                f"object path {ref.bit_count()}"
            )
            assert mine == ref, (
                f"processor {v}: packed hold set diverged from the object path"
            )


def bits_of(bitset: int) -> List[int]:
    """Indices of the set bits of ``bitset``, ascending."""
    out: List[int] = []
    m = bitset
    while m:
        low = m & -m
        out.append(low.bit_length() - 1)
        m ^= low
    return out


def popcount(bitset: int) -> int:
    """Number of set bits (messages held)."""
    return bitset.bit_count()


def union_all(bitsets: Iterable[int]) -> int:
    """Union of several hold sets."""
    acc = 0
    for b in bitsets:
        acc |= b
    return acc
