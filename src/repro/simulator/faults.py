"""Schedule perturbation — failure injection for the validator tests.

The engine and validator claim to catch every violation of the
communication model.  The mutators here produce *minimally broken*
variants of a correct schedule so the test suite can verify each failure
mode is actually detected (and that an unperturbed copy still passes):

* :func:`drop_round` — delete one round: gossip ends incomplete;
* :func:`drop_transmission` — delete one multicast: incomplete, or a
  later sender no longer holds what it sends;
* :func:`corrupt_message` — change a message id: possession violation;
* :func:`redirect_to_nonneighbor` — retarget a destination off-edge:
  adjacency violation;
* :func:`duplicate_receiver` — aim two same-round transmissions at one
  processor: rejected at :class:`~repro.core.schedule.Round` level;
* :func:`swap_rounds` — exchange two rounds: a pipelined schedule
  typically turns into a possession violation (rarely the swap is
  harmless; the tests accept either verdict).
"""

from __future__ import annotations

from typing import List

from ..core.schedule import Round, Schedule, Transmission
from ..exceptions import ScheduleError
from ..networks.graph import Graph

__all__ = [
    "drop_round",
    "drop_transmission",
    "corrupt_message",
    "redirect_to_nonneighbor",
    "duplicate_receiver",
    "swap_rounds",
]


def _rounds(schedule: Schedule) -> List[List[Transmission]]:
    return [list(rnd.transmissions) for rnd in schedule]


def _rebuild(rounds: List[List[Transmission]], name: str) -> Schedule:
    return Schedule((Round(txs) for txs in rounds), name=name)


def drop_round(schedule: Schedule, index: int) -> Schedule:
    """Remove the round at ``index`` entirely (later rounds shift earlier)."""
    rounds = _rounds(schedule)
    if not 0 <= index < len(rounds):
        raise ScheduleError(f"no round {index} in a {len(rounds)}-round schedule")
    del rounds[index]
    return _rebuild(rounds, f"{schedule.name}-dropped-round-{index}")


def drop_transmission(schedule: Schedule, round_index: int, tx_index: int) -> Schedule:
    """Remove one multicast from one round."""
    rounds = _rounds(schedule)
    try:
        del rounds[round_index][tx_index]
    except IndexError as exc:
        raise ScheduleError(
            f"no transmission ({round_index}, {tx_index}) in schedule"
        ) from exc
    return _rebuild(rounds, f"{schedule.name}-dropped-tx")


def corrupt_message(
    schedule: Schedule, round_index: int, tx_index: int, new_message: int
) -> Schedule:
    """Replace the message id of one transmission."""
    rounds = _rounds(schedule)
    try:
        tx = rounds[round_index][tx_index]
    except IndexError as exc:
        raise ScheduleError(
            f"no transmission ({round_index}, {tx_index}) in schedule"
        ) from exc
    rounds[round_index][tx_index] = Transmission(
        sender=tx.sender, message=new_message, destinations=tx.destinations
    )
    return _rebuild(rounds, f"{schedule.name}-corrupt-msg")


def redirect_to_nonneighbor(
    schedule: Schedule, graph: Graph, round_index: int, tx_index: int
) -> Schedule:
    """Retarget one destination of one transmission to a non-neighbour.

    Raises :class:`ScheduleError` when the sender is adjacent to every
    other vertex (no off-edge target exists).
    """
    rounds = _rounds(schedule)
    try:
        tx = rounds[round_index][tx_index]
    except IndexError as exc:
        raise ScheduleError(
            f"no transmission ({round_index}, {tx_index}) in schedule"
        ) from exc
    receiving = {
        d
        for other in rounds[round_index]
        for d in other.destinations
    }
    strangers = [
        v
        for v in range(graph.n)
        if v != tx.sender
        and not graph.has_edge(tx.sender, v)
        and v not in receiving  # keep the round structurally valid
    ]
    if not strangers:
        raise ScheduleError(f"vertex {tx.sender} is adjacent to everyone")
    dests = set(tx.destinations)
    dests.remove(max(dests))
    dests.add(strangers[0])
    rounds[round_index][tx_index] = Transmission(
        sender=tx.sender, message=tx.message, destinations=frozenset(dests)
    )
    return _rebuild(rounds, f"{schedule.name}-offedge")


def swap_rounds(schedule: Schedule, a: int, b: int) -> Schedule:
    """Exchange the rounds at positions ``a`` and ``b``.

    Reordering a pipelined schedule typically makes some vertex send a
    message before it arrives — a possession violation the engine must
    catch (or, rarely, the swap is harmless and the schedule still
    completes; the tests accept either verdict but never a silent wrong
    result).
    """
    rounds = _rounds(schedule)
    if not (0 <= a < len(rounds) and 0 <= b < len(rounds)):
        raise ScheduleError(f"cannot swap rounds ({a}, {b}) of {len(rounds)}")
    rounds[a], rounds[b] = rounds[b], rounds[a]
    return _rebuild(rounds, f"{schedule.name}-swapped-{a}-{b}")


def duplicate_receiver(schedule: Schedule, round_index: int) -> Schedule:
    """Make two transmissions of one round target the same receiver.

    Needs a round with at least two transmissions; the resulting rounds
    raise :class:`~repro.exceptions.ScheduleConflictError` at
    construction, proving rule 1 is enforced structurally.
    """
    rounds = _rounds(schedule)
    txs = rounds[round_index]
    if len(txs) < 2:
        raise ScheduleError(f"round {round_index} has fewer than two transmissions")
    for a in range(len(txs)):
        for b in range(len(txs)):
            if a == b:
                continue
            for victim in sorted(txs[a].destinations):
                if victim != txs[b].sender and victim not in txs[b].destinations:
                    txs[b] = Transmission(
                        sender=txs[b].sender,
                        message=txs[b].message,
                        destinations=txs[b].destinations | {victim},
                    )
                    return _rebuild(rounds, f"{schedule.name}-dup-receiver")
    raise ScheduleError(f"round {round_index} admits no receiver duplication")
