"""Synchronous round-based execution of communication schedules.

This is the library's ground truth: a schedule is *correct* iff this
engine, which enforces exactly the two communication rules of Section 1,
executes it without violations and ends with every processor holding
every message.

Model recap (paper Section 1):

1. per round each processor receives at most one message — enforced
   structurally by :class:`~repro.core.schedule.Round`;
2. per round each processor sends at most one held message, multicast to
   a subset of its *adjacent* processors — adjacency and possession are
   enforced here;
3. receive happens before send: a message delivered at time ``t`` (sent
   in round ``t - 1``) may be forwarded in round ``t``.

The engine therefore applies round ``t-1``'s deliveries before checking
round ``t``'s sends.

Array-backed schedules take a vectorised fast path (unless an arrival
log was requested): possession, adjacency, and the hold-set updates all
run on the flat round/sender/message columns and the uint64 destination
masks via :class:`~repro.simulator.state.PackedHoldState`, one numpy
round at a time instead of one Python transmission at a time.  Results
— completion times, duplicate counts, final holds, and every error
message — are identical to the object path; the differential tests
execute both and assert it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..core.schedule import ArraySchedule, Schedule, Transmission
from ..exceptions import IncompleteGossipError, ModelViolationError
from ..networks.graph import Graph
from .state import HoldState, PackedHoldState

__all__ = ["ExecutionResult", "execute_schedule", "ArrivalEvent"]


@dataclass(frozen=True)
class ArrivalEvent:
    """One delivery: ``message`` reached ``receiver`` from ``sender`` at ``time``."""

    time: int
    receiver: int
    sender: int
    message: int


@dataclass
class ExecutionResult:
    """Everything observable about one schedule execution.

    Attributes
    ----------
    complete:
        Whether every processor ended up holding every message.
    total_time:
        The schedule's total communication time (number of rounds).
    completion_times:
        Per-processor first time holding all messages (``None`` if never).
    duplicate_deliveries:
        Deliveries of messages the receiver already had (model-legal waste).
    final_holds:
        Final hold bitsets, one per processor.
    arrivals:
        Full delivery log when ``record_arrivals=True`` was requested,
        otherwise empty.  This is what the table reproductions consume.
    """

    complete: bool
    total_time: int
    completion_times: List[Optional[int]]
    duplicate_deliveries: int
    final_holds: List[int]
    arrivals: List[ArrivalEvent] = field(default_factory=list)

    @property
    def makespan(self) -> Optional[int]:
        """Latest completion time over all processors.

        ``None`` when the run is incomplete (some processor never held
        every message) — distinguishable from the legitimate ``0`` of a
        trivial run where every processor starts complete.
        """
        if not self.complete:
            return None
        return max(t for t in self.completion_times if t is not None)


def execute_schedule(
    graph: Graph,
    schedule: "Schedule | ArraySchedule",
    initial_holds: Optional[Sequence[int]] = None,
    n_messages: Optional[int] = None,
    require_complete: bool = False,
    record_arrivals: bool = False,
) -> ExecutionResult:
    """Run ``schedule`` on ``graph`` and report what happened.

    Parameters
    ----------
    graph:
        The communication network.  Every transmission must travel along
        edges of this graph (multicast = one message to any subset of the
        sender's neighbours).
    schedule:
        The rounds to execute — a :class:`Schedule` or a bare
        :class:`ArraySchedule` (normalised through the facade).
        Structural per-round rules were already checked at
        :class:`~repro.core.schedule.Round` (object path) or
        :class:`ArraySchedule` (array path) construction.
    initial_holds:
        Initial hold bitsets; defaults to "processor ``v`` holds message
        ``v``".  Pass :func:`repro.simulator.state.labeled_holdings` when
        executing schedules that use DFS labels as message ids.
    n_messages:
        Total number of distinct messages (defaults to ``graph.n``).
    require_complete:
        When true, raise :class:`~repro.exceptions.IncompleteGossipError`
        unless gossip finished.
    record_arrivals:
        When true, log every delivery (needed by the table benchmarks).

    Raises
    ------
    ModelViolationError
        A sender transmits a message it does not hold, or to a
        non-neighbour.
    IncompleteGossipError
        Only with ``require_complete=True``.
    """
    if isinstance(schedule, ArraySchedule):
        schedule = Schedule.from_arrays(schedule)
    if (
        not record_arrivals
        and schedule.is_array_backed
        and schedule.arrays().n == graph.n
    ):
        return _execute_arrays(
            graph,
            schedule.arrays(),
            initial_holds=initial_holds,
            n_messages=n_messages,
            require_complete=require_complete,
        )
    state = HoldState(
        graph.n,
        initial=initial_holds,
        n_messages=n_messages,
        track_arrivals=record_arrivals,
    )
    arrivals: List[ArrivalEvent] = []
    pending: List[Tuple[int, int, int]] = []  # (receiver, sender, message)
    # Per-sender neighbour sets, built once per sender across the whole
    # run: repeat senders in large multicast schedules would otherwise
    # pay a tuple rebuild + O(degree) scan per transmission.
    neighbour_sets: Dict[int, FrozenSet[int]] = {}

    for t, rnd in enumerate(schedule):
        # Receive-before-send: apply last round's deliveries first.
        for receiver, sender, message in pending:
            state.deliver(receiver, message, t)
            if record_arrivals:
                arrivals.append(ArrivalEvent(t, receiver, sender, message))
        pending = []
        for tx in rnd:
            _check_transmission(graph, state, tx, t, neighbour_sets)
            for d in tx.destinations:
                pending.append((d, tx.sender, tx.message))
    final_time = schedule.total_time
    for receiver, sender, message in pending:
        state.deliver(receiver, message, final_time)
        if record_arrivals:
            arrivals.append(ArrivalEvent(final_time, receiver, sender, message))

    complete = state.all_complete()
    if require_complete and not complete:
        missing = {
            v: state.missing_of(v) for v in range(graph.n) if not state.is_complete(v)
        }
        raise IncompleteGossipError(
            f"gossip incomplete after {final_time} rounds; missing: {missing}"
        )
    return ExecutionResult(
        complete=complete,
        total_time=final_time,
        completion_times=state.completion_times(),
        duplicate_deliveries=state.duplicate_deliveries,
        final_holds=state.snapshot(),
        arrivals=arrivals,
    )


def _packed_adjacency(graph: Graph) -> np.ndarray:
    """Neighbour sets as an ``(n, ceil(n / 64))`` uint64 bitmask matrix.

    Same word/bit convention as the schedule destination masks, so
    "every destination is adjacent" is one masked AND per transmission.
    """
    adj = np.zeros((graph.n, (graph.n + 63) // 64), dtype=np.uint64)
    for v in range(graph.n):
        for u in graph.neighbors(v):
            adj[v, u >> 6] |= np.uint64(1) << np.uint64(u & 63)
    return adj


def _execute_arrays(
    graph: Graph,
    arrays,
    *,
    initial_holds: Optional[Sequence[int]],
    n_messages: Optional[int],
    require_complete: bool,
) -> ExecutionResult:
    """The vectorised execution path for array-backed schedules.

    Walks the CSR round slices of an
    :class:`~repro.core.schedule.ArraySchedule`, checking possession
    against the packed hold matrix and adjacency against the packed
    neighbour matrix, then applying the round's flat delivery stream in
    one scatter.  Receive-before-send and all error messages mirror the
    object path exactly.
    """
    state = PackedHoldState(graph.n, initial=initial_holds, n_messages=n_messages)
    adj = _packed_adjacency(graph)
    ptr = arrays.round_ptr
    masks = arrays.dest_mask
    senders = arrays.sender.astype(np.int64)
    messages = arrays.message.astype(np.int64)
    # Flat delivery stream, sliced per round: pair i delivers
    # messages[pair_row[i]] to pair_dest[i].
    pair_row, pair_dest = arrays.destination_pairs()
    pair_ptr = np.searchsorted(pair_row, ptr)

    final_time = arrays.total_time
    pend_recv = pend_msg = np.zeros(0, dtype=np.int64)
    for t in range(final_time):
        # Receive-before-send: apply last round's deliveries first.
        state.deliver_round(pend_recv, pend_msg, t)
        lo, hi = int(ptr[t]), int(ptr[t + 1])
        if hi > lo:
            snd = senders[lo:hi]
            msg = messages[lo:hi]
            poss_ok = state.holds_mask(snd, msg)
            adj_ok = ~np.any(masks[lo:hi] & ~adj[snd], axis=1)
            if not (poss_ok.all() and adj_ok.all()):
                i = int(np.flatnonzero(~poss_ok | ~adj_ok)[0])
                s, m = int(snd[i]), int(msg[i])
                if not poss_ok[i]:
                    raise ModelViolationError(
                        f"at time {t} processor {s} sends message {m} "
                        f"it does not hold (holds {state.messages_of(s)})"
                    )
                stray = masks[lo + i] & ~adj[s]
                w = int(np.flatnonzero(stray)[0])
                d = w * 64 + (int(stray[w]) & -int(stray[w])).bit_length() - 1
                raise ModelViolationError(
                    f"at time {t} processor {s} multicasts to {d}, "
                    "which is not an adjacent processor"
                )
        plo, phi = int(pair_ptr[t]), int(pair_ptr[t + 1])
        pend_recv = pair_dest[plo:phi]
        pend_msg = messages[pair_row[plo:phi]]
    state.deliver_round(pend_recv, pend_msg, final_time)

    complete = state.all_complete()
    if require_complete and not complete:
        missing = {
            v: state.missing_of(v)
            for v in range(graph.n)
            if not state.is_complete(v)
        }
        raise IncompleteGossipError(
            f"gossip incomplete after {final_time} rounds; missing: {missing}"
        )
    return ExecutionResult(
        complete=complete,
        total_time=final_time,
        completion_times=state.completion_times(),
        duplicate_deliveries=state.duplicate_deliveries,
        final_holds=state.snapshot(),
        arrivals=[],
    )


def _check_transmission(
    graph: Graph,
    state: HoldState,
    tx: Transmission,
    time: int,
    neighbour_sets: Optional[Dict[int, FrozenSet[int]]] = None,
) -> None:
    """Enforce possession and adjacency for one transmission.

    ``neighbour_sets`` is a per-sender cache of frozenset neighbour
    views shared across one execution (membership tests are O(1) against
    the O(degree) scan of the raw neighbour tuple).
    """
    if not state.holds(tx.sender, tx.message):
        raise ModelViolationError(
            f"at time {time} processor {tx.sender} sends message {tx.message} "
            f"it does not hold (holds {state.messages_of(tx.sender)})"
        )
    if neighbour_sets is None:
        neighbours: FrozenSet[int] = frozenset(graph.neighbors(tx.sender))
    else:
        cached = neighbour_sets.get(tx.sender)
        if cached is None:
            cached = neighbour_sets[tx.sender] = frozenset(graph.neighbors(tx.sender))
        neighbours = cached
    for d in tx.destinations:
        if d not in neighbours:
            raise ModelViolationError(
                f"at time {time} processor {tx.sender} multicasts to {d}, "
                "which is not an adjacent processor"
            )
