"""An independent reference implementation of the communication model.

A deliberately naive executor — plain dict-of-set hold sets, explicit
per-round receive maps, no bitset tricks — maintained *separately* from
:mod:`repro.simulator.engine` so the two can cross-check each other.
The property test ``tests/property/test_property_reference.py`` asserts
both backends agree (violation-or-not, completeness, per-vertex
completion times) on every schedule the library generates; a bug would
have to be introduced twice, identically, to slip through.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.schedule import Schedule
from ..exceptions import ModelViolationError
from ..networks.graph import Graph

__all__ = ["ReferenceResult", "reference_execute"]


@dataclass(frozen=True)
class ReferenceResult:
    """Outcome of a reference execution (mirrors ExecutionResult's core)."""

    complete: bool
    completion_times: Tuple[Optional[int], ...]
    final_holds: Tuple[frozenset, ...]


def reference_execute(
    graph: Graph,
    schedule: Schedule,
    initial_holds: Optional[Sequence[Set[int]]] = None,
    n_messages: Optional[int] = None,
) -> ReferenceResult:
    """Execute ``schedule`` with the naive reference semantics.

    ``initial_holds`` is a list of *sets* of message ids (default:
    processor ``v`` holds ``{v}``).  Raises
    :class:`~repro.exceptions.ModelViolationError` on any rule violation,
    phrased independently from the main engine.
    """
    n = graph.n
    total = n if n_messages is None else n_messages
    universe = set(range(total))
    holds: List[Set[int]] = (
        [{v} for v in range(n)]
        if initial_holds is None
        else [set(h) for h in initial_holds]
    )
    completion: List[Optional[int]] = [
        0 if holds[v] == universe else None for v in range(n)
    ]
    # in_flight[receiver] = (message) delivered at the *next* round start
    in_flight: Dict[int, int] = {}

    for t, rnd in enumerate(schedule):
        # deliveries from round t - 1 land now (receive before send)
        for receiver, message in in_flight.items():
            holds[receiver].add(message)
            if completion[receiver] is None and holds[receiver] == universe:
                completion[receiver] = t
        in_flight = {}
        senders_seen: Set[int] = set()
        receivers_seen: Set[int] = set()
        for tx in rnd:
            if tx.sender in senders_seen:
                raise ModelViolationError(
                    f"reference: double send by {tx.sender} at {t}"
                )
            senders_seen.add(tx.sender)
            if tx.message not in holds[tx.sender]:
                raise ModelViolationError(
                    f"reference: {tx.sender} lacks message {tx.message} at {t}"
                )
            for d in tx.destinations:
                if d in receivers_seen:
                    raise ModelViolationError(
                        f"reference: double receive at {d} at time {t + 1}"
                    )
                receivers_seen.add(d)
                if not graph.has_edge(tx.sender, d):
                    raise ModelViolationError(
                        f"reference: {tx.sender} -> {d} is not a link"
                    )
                in_flight[d] = tx.message
    final_t = schedule.total_time
    for receiver, message in in_flight.items():
        holds[receiver].add(message)
        if completion[receiver] is None and holds[receiver] == universe:
            completion[receiver] = final_t

    return ReferenceResult(
        complete=all(h == universe for h in holds),
        completion_times=tuple(completion),
        final_holds=tuple(frozenset(h) for h in holds),
    )
