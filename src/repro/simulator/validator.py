"""Static and dynamic schedule validation.

:class:`~repro.core.schedule.Round` already rejects per-round rule
violations at construction.  This module adds:

Every entry point accepts either a :class:`~repro.core.schedule.Schedule`
or a bare :class:`~repro.core.schedule.ArraySchedule` (the canonical
array form; both layers below normalise it through the facade):

* :func:`check_static` — network-level checks that need no execution:
  all endpoints and message ids in range, every transmission along an
  existing edge.  Implemented on top of the static analyzer's model
  rules (:data:`repro.lint.STATIC_MODEL_RULES`) so the static and
  dynamic layers cannot drift: both judge a schedule through the same
  rule registry;
* :func:`validate_schedule` — the full dynamic check: run the
  round-based engine and verify possession, adjacency and (optionally)
  completeness;
* :func:`assert_gossip_schedule` — one call asserting everything the
  paper requires of a gossip schedule, returning the execution result.

Keeping validation separate from construction lets the test suite verify
that *deliberately broken* schedules are caught (failure-injection tests
in ``tests/simulator/test_faults.py``).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..core.schedule import ArraySchedule, Schedule
from ..exceptions import ScheduleError
from ..lint import STATIC_MODEL_RULES, diagnostic_exception, lint_schedule
from ..networks.graph import Graph
from .engine import ExecutionResult, execute_schedule

__all__ = ["check_static", "validate_schedule", "assert_gossip_schedule"]


def check_static(
    graph: Graph,
    schedule: Union[Schedule, ArraySchedule],
    *,
    n_messages: Optional[int] = None,
) -> None:
    """Raise unless every transmission is statically well-formed.

    Checks vertex ranges, message-id ranges (``[0, n_messages)``,
    defaulting to ``[0, n)`` — an out-of-range id used to sail through
    and only explode inside the engine), and adjacency.  Runs the lint
    model rules in :data:`repro.lint.STATIC_MODEL_RULES` and re-raises
    the first error with its historical exception type
    (:class:`~repro.exceptions.ScheduleError` for range violations,
    :class:`~repro.exceptions.ModelViolationError` for non-edges).
    """
    report = lint_schedule(
        graph,
        schedule,
        n_messages=n_messages,
        select=STATIC_MODEL_RULES,
        require_complete=False,
    )
    if report.errors:
        raise diagnostic_exception(report.errors[0])


def validate_schedule(
    graph: Graph,
    schedule: Union[Schedule, ArraySchedule],
    initial_holds: Optional[Sequence[int]] = None,
    require_complete: bool = True,
) -> ExecutionResult:
    """Statically and dynamically validate ``schedule`` on ``graph``.

    Returns the engine's :class:`~repro.simulator.engine.ExecutionResult`
    on success; raises a :class:`~repro.exceptions.ScheduleError` subclass
    describing the first violation otherwise.
    """
    check_static(graph, schedule)
    return execute_schedule(
        graph,
        schedule,
        initial_holds=initial_holds,
        require_complete=require_complete,
    )


def assert_gossip_schedule(
    graph: Graph,
    schedule: Union[Schedule, ArraySchedule],
    initial_holds: Optional[Sequence[int]] = None,
    max_total_time: Optional[int] = None,
) -> ExecutionResult:
    """Assert ``schedule`` solves gossiping on ``graph`` within a budget.

    ``max_total_time`` (e.g. the paper's ``n + r``) is checked when given.
    """
    result = validate_schedule(
        graph, schedule, initial_holds=initial_holds, require_complete=True
    )
    if max_total_time is not None and schedule.total_time > max_total_time:
        raise ScheduleError(
            f"schedule takes {schedule.total_time} rounds, exceeding the "
            f"budget {max_total_time}"
        )
    return result
