"""Execution substrate: the synchronous round-based network simulator.

Ground truth for schedule correctness: :func:`~repro.simulator.engine.execute_schedule`
enforces the two communication rules of Section 1, and
:mod:`~repro.simulator.validator` wraps it with structural checks.
:mod:`~repro.simulator.trace` extracts per-vertex timelines (the paper's
Tables 1–4); :mod:`~repro.simulator.metrics` summarises executions;
:mod:`~repro.simulator.faults` perturbs schedules for robustness tests;
:mod:`~repro.simulator.lossy` executes schedules under a seeded runtime
fault model (dropped deliveries, link outages, transient crashes) for
the recovery layer in :mod:`repro.core.recovery`.
"""

from .engine import ArrivalEvent, ExecutionResult, execute_schedule
from .lossy import (
    FaultModel,
    FaultyExecutionResult,
    LostDelivery,
    SuppressedSend,
    execute_with_faults,
)
from .metrics import ScheduleMetrics, compute_metrics, link_loads
from .reference import ReferenceResult, reference_execute
from .state import HoldState, identity_holdings, labeled_holdings
from .trace import VertexTimeline, all_timelines, vertex_timeline
from .validator import assert_gossip_schedule, check_static, validate_schedule

__all__ = [
    "execute_schedule",
    "ExecutionResult",
    "ArrivalEvent",
    "FaultModel",
    "FaultyExecutionResult",
    "LostDelivery",
    "SuppressedSend",
    "execute_with_faults",
    "reference_execute",
    "ReferenceResult",
    "HoldState",
    "identity_holdings",
    "labeled_holdings",
    "VertexTimeline",
    "vertex_timeline",
    "all_timelines",
    "ScheduleMetrics",
    "compute_metrics",
    "link_loads",
    "check_static",
    "validate_schedule",
    "assert_gossip_schedule",
]
