"""ASCII rendering of trees, schedules and Gantt-style timelines.

Terminal-friendly views used by the CLI and the examples; no plotting
dependencies.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.schedule import Schedule
from ..tree.labeling import LabeledTree
from ..tree.tree import Tree

__all__ = ["render_tree", "render_schedule", "render_gantt"]


def render_tree(tree: Tree, labeled: Optional[LabeledTree] = None) -> str:
    """Indented tree drawing; with a labelling, shows ``(i, j, k)`` blocks.

    Example output::

        0 [i=0 j=15 k=0]
        ├── 1 [i=1 j=3 k=1]
        │   ├── 2 [i=2 j=2 k=2]
        ...
    """
    lines: List[str] = []

    def describe(v: int) -> str:
        if labeled is None:
            return str(v)
        b = labeled.block(v)
        return f"{v} [i={b.i} j={b.j} k={b.k}]"

    def walk(v: int, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(describe(v))
            child_prefix = ""
        else:
            lines.append(f"{prefix}{'└── ' if is_last else '├── '}{describe(v)}")
            child_prefix = prefix + ("    " if is_last else "│   ")
        kids = tree.children(v)
        for idx, c in enumerate(kids):
            walk(c, child_prefix, idx == len(kids) - 1, False)

    walk(tree.root, "", True, True)
    return "\n".join(lines)


def render_schedule(schedule: Schedule, max_rounds: Optional[int] = None) -> str:
    """One line per round: ``t=..: (m, s -> {d...}) ...``."""
    lines = [f"{schedule.name or 'schedule'}: {schedule.total_time} rounds"]
    horizon = schedule.total_time if max_rounds is None else min(
        max_rounds, schedule.total_time
    )
    for t in range(horizon):
        rnd = schedule.round_at(t)
        body = "  ".join(repr(tx) for tx in rnd) or "(idle)"
        lines.append(f"  t={t:>3}: {body}")
    if horizon < schedule.total_time:
        lines.append(f"  ... ({schedule.total_time - horizon} more rounds)")
    return "\n".join(lines)


def render_gantt(schedule: Schedule, n: int, width: int = 100) -> str:
    """Per-processor send activity bars: ``#`` = sending, ``.`` = idle.

    Gives an immediate visual of the pipelining (the dense diagonal of
    the up-stream, the staggered down-stream).
    """
    horizon = min(schedule.total_time, width)
    rows = []
    for v in range(n):
        cells = []
        for t in range(horizon):
            tx = schedule.round_at(t).sent_by(v)
            cells.append("#" if tx is not None else ".")
        suffix = "…" if schedule.total_time > width else ""
        rows.append(f"P{v:<4} {''.join(cells)}{suffix}")
    header = f"time  {''.join(str(t % 10) for t in range(horizon))}"
    return "\n".join([header, *rows])
