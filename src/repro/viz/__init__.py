"""Terminal visualisation helpers (no plotting dependencies)."""

from .ascii import render_gantt, render_schedule, render_tree

__all__ = ["render_tree", "render_schedule", "render_gantt"]
