"""Structured incident journal of the multi-process supervisor.

Every noteworthy event in a supervised run — a crash detected on a
process sentinel, a heartbeat suspicion, a restart attempt, a completed
state resync, a declared fail-stop, a missed deadline — is recorded as
one typed :class:`Incident` in an :class:`IncidentJournal`.  The journal
is the supervisor's black box: it survives the run inside
:class:`~repro.runtime.supervisor.ProcResult` (and rides on
:class:`~repro.exceptions.SupervisorError` when the run fails outright),
and it serialises to JSON Lines for offline forensics.

Incident kinds
--------------
========================  ====================================================
kind                      meaning
========================  ====================================================
``crash-detected``        a child process exited without saying goodbye;
                          ``detected_by="sentinel"``, ``details`` carries the
                          exit code (``-9`` for a SIGKILL).
``suspicion``             a live peer's heartbeat detector (or retransmit
                          cap) reported the victim;
                          ``detected_by="peer:<reporter>"``.
``abort``                 the supervisor froze phase 1 on the survivors.
``restart``               one restart attempt of a victim (``attempt`` is
                          1-based; ``details`` the backoff waited).
``rejoin-failed``         the restarted process died again before completing
                          rendezvous.
``fail-stop-declared``    the restart budget is exhausted; the victim is
                          permanently dead.
``resync``                a rejoined peer completed its state transfer from
                          a live neighbour (``details`` names the source).
``recovered``             a rejoin completion schedule finished — full
                          gossip holds again.
``failover-replan``       the survivors were re-scheduled around the dead
                          (``details`` the replanned round count).
``deadline``              a whole-run or child deadline expired.
``child-error``           a child reported a typed error instead of crashing.
========================  ====================================================

Journal entries are *observations*, not determinism-bearing protocol
state: wall-clock offsets vary run to run, so
:meth:`ProcResult.deterministic_summary` deliberately excludes them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Type

from ..exceptions import JournalFormatError

__all__ = ["Incident", "IncidentJournal"]

#: Field name -> required JSON type for one journal line.
_FIELD_TYPES: Tuple[Tuple[str, Type[object]], ...] = (
    ("seq", int),
    ("kind", str),
    ("vertex", int),
    ("detected_by", str),
    ("attempt", int),
    ("wall_seconds", float),
    ("details", str),
)


@dataclass(frozen=True)
class Incident:
    """One supervision event (see the module docstring for kinds).

    Attributes
    ----------
    seq:
        Position in the journal (0-based, assigned at record time).
    kind:
        Event type — one of the kinds tabulated in the module docstring.
    vertex:
        The peer the event is about (-1 for fleet-wide events).
    detected_by:
        Detection channel: ``"sentinel"``, ``"peer:<reporter>"``,
        ``"supervisor"``.
    attempt:
        Restart attempt number (0 when not a restart-family event).
    wall_seconds:
        Seconds since the supervised run started (machine-dependent).
    details:
        Free-form human-readable context.
    """

    seq: int
    kind: str
    vertex: int
    detected_by: str
    attempt: int
    wall_seconds: float
    details: str

    def to_json(self) -> str:
        """This incident as one JSON object (one JSONL line)."""
        return json.dumps(
            {
                "seq": self.seq,
                "kind": self.kind,
                "vertex": self.vertex,
                "detected_by": self.detected_by,
                "attempt": self.attempt,
                "wall_seconds": round(self.wall_seconds, 6),
                "details": self.details,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str, *, line_number: int = 0) -> "Incident":
        """Parse one JSONL line back into an equal :class:`Incident`.

        Raises :class:`~repro.exceptions.JournalFormatError` (never a
        bare ``json.JSONDecodeError``) when the line is not valid JSON,
        not an object, or lacks / mistypes an incident field.
        """
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise JournalFormatError(
                f"journal line is not valid JSON: {exc}",
                line_number=line_number,
            ) from exc
        if not isinstance(doc, dict):
            raise JournalFormatError(
                f"journal line is not a JSON object: {type(doc).__name__}",
                line_number=line_number,
            )
        for name, expected in _FIELD_TYPES:
            if name not in doc:
                raise JournalFormatError(
                    f"journal line lacks the {name!r} field",
                    line_number=line_number,
                )
            value = doc[name]
            if expected is float and isinstance(value, int):
                value = float(value)  # JSON writes 0.0 as 0
            if not isinstance(value, expected) or isinstance(value, bool):
                raise JournalFormatError(
                    f"journal field {name!r} is {type(value).__name__}, "
                    f"expected {expected.__name__}",
                    line_number=line_number,
                )
        unknown = sorted(set(doc) - {name for name, _ in _FIELD_TYPES})
        if unknown:
            raise JournalFormatError(
                f"journal line carries unknown field(s): {', '.join(unknown)}",
                line_number=line_number,
            )
        return cls(
            seq=doc["seq"],
            kind=doc["kind"],
            vertex=doc["vertex"],
            detected_by=doc["detected_by"],
            attempt=doc["attempt"],
            wall_seconds=float(doc["wall_seconds"]),
            details=doc["details"],
        )


class IncidentJournal:
    """An append-only, in-order record of supervision events."""

    def __init__(self) -> None:
        self._incidents: List[Incident] = []

    def record(
        self,
        kind: str,
        *,
        vertex: int = -1,
        detected_by: str = "supervisor",
        attempt: int = 0,
        wall_seconds: float = 0.0,
        details: str = "",
    ) -> Incident:
        """Append one incident and return it."""
        incident = Incident(
            seq=len(self._incidents),
            kind=kind,
            vertex=vertex,
            detected_by=detected_by,
            attempt=attempt,
            wall_seconds=wall_seconds,
            details=details,
        )
        self._incidents.append(incident)
        return incident

    def __len__(self) -> int:
        return len(self._incidents)

    def __iter__(self) -> Iterator[Incident]:
        return iter(self._incidents)

    @property
    def incidents(self) -> Tuple[Incident, ...]:
        """All incidents, in detection order."""
        return tuple(self._incidents)

    def of_kind(self, kind: str) -> Tuple[Incident, ...]:
        """Incidents filtered to one kind, in detection order."""
        return tuple(i for i in self._incidents if i.kind == kind)

    def about(self, vertex: int) -> Tuple[Incident, ...]:
        """Incidents concerning one peer, in detection order."""
        return tuple(i for i in self._incidents if i.vertex == vertex)

    def first(self, kind: str) -> Optional[Incident]:
        """The earliest incident of ``kind`` (None when absent)."""
        for incident in self._incidents:
            if incident.kind == kind:
                return incident
        return None

    def to_jsonl(self) -> str:
        """The whole journal as JSON Lines (one incident per line)."""
        return "\n".join(i.to_json() for i in self._incidents)

    @classmethod
    def from_jsonl(cls, text: str) -> "IncidentJournal":
        """Parse a :meth:`to_jsonl` document back into an equal journal.

        Blank lines are skipped (a trailing newline is fine); any
        malformed line raises a typed
        :class:`~repro.exceptions.JournalFormatError` whose
        ``line_number`` names it (1-based).
        """
        journal = cls()
        for number, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            journal._incidents.append(
                Incident.from_json(line, line_number=number)
            )
        return journal
