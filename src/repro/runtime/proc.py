"""Child-process side of the supervised multi-process runtime.

One OS process per peer: the :class:`~repro.runtime.supervisor.Supervisor`
spawns :func:`_child_entry` (spawn start method — a fresh interpreter,
nothing shared) with a picklable :class:`PeerSpec` and one end of a
duplex :class:`multiprocessing.connection.Connection`.  The child runs
the *existing* :class:`~repro.runtime.peer.GossipPeer` machinery over a
real UDP socket it binds itself; the pipe is a pure **control plane** —
rendezvous, start, abort, revive, scripts, shutdown — and never carries
gossip payload.  Every message a peer learns still arrives as a
datagram from another process.

Control protocol (tag-first tuples, both directions)
----------------------------------------------------
Child → supervisor::

    (HELLO, vertex, udp_port)            bound and listening
    (SUSPECT, reporter, victim)          failure detector fired
    (PHASE1, vertex, snapshot)           online phase over (done/aborted)
    (RESYNCED, vertex, holds)            rejoin state transfer complete
    (PHASE2, vertex, snapshot)           scripted phase over
    (DEADLINE, vertex, phase, message)   a typed deadline expired
    (ERROR, vertex, repr)                a typed error (not a crash)
    (BYE, vertex)                        clean exit imminent

Supervisor → child::

    (ADDRS, {vertex: (host, port)})      address book (re-broadcast on rejoin)
    (START,)                             begin phase 1 (or rejoin idle loop)
    (ABORT,)                             freeze phase 1, snapshot holds
    (REVIVE, vertex)                     clear a rejoined peer from dead sets
    (RESYNC, source)                     rejoined child: pull state from source
    (SCRIPT, peer_script, dead)          run one scripted phase slice
    (SHUTDOWN,)                          stop loops, close socket, exit

Crash injection is *real* here: a ``NetChaos.sigkill`` round makes the
child send **itself** ``SIGKILL`` (via the peer's ``kill_via`` hook), so
the interpreter vanishes mid-protocol with no cleanup — the supervisor
must notice via the process sentinel and the survivors' heartbeat
detectors, exactly like an OOM kill in production.  ``rejoin_crashes``
additionally kills the first N restart attempts at boot, exercising the
capped restart ladder.

A watchdog (``2 * run_timeout`` on the child's own clock) bounds every
child's lifetime, so an orphaned process exits by itself even if the
supervisor died without saying shutdown.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
from dataclasses import dataclass
from multiprocessing.connection import Connection
from typing import Callable, Dict, Optional, Set, Tuple

from ..core.online import build_processors
from ..exceptions import GossipRuntimeError, RuntimeDeadlineError
from ..tree.labeling import LabeledTree
from .clock import Clock, RealClock, ScaledClock
from .peer import GossipPeer, PeerProtocol, PeerScript, RuntimeConfig
from .transport import LossyDatagramTransport, NetChaos

__all__ = ["PeerSpec", "_child_entry"]

# Child → supervisor tags.
HELLO = "hello"
SUSPECT = "suspect"
PHASE1 = "phase1"
RESYNCED = "resynced"
PHASE2 = "phase2"
DEADLINE = "deadline"
ERROR = "error"
BYE = "bye"

# Supervisor → child tags.
ADDRS = "addrs"
START = "start"
ABORT = "abort"
REVIVE = "revive"
RESYNC = "resync"
SCRIPT = "script"
SHUTDOWN = "shutdown"


@dataclass(frozen=True)
class PeerSpec:
    """Everything one spawned peer needs (picklable by construction).

    Carries the :class:`~repro.tree.labeling.LabeledTree` rather than a
    :class:`~repro.core.gossip.GossipPlan` — the child rebuilds its own
    :class:`~repro.core.online.OnlineProcessor` from the tree, which is
    also the honest architecture: a real processor owns its ``(i, j, k)``
    block, not the global schedule.
    """

    vertex: int
    horizon: int
    labeled: LabeledTree
    config: RuntimeConfig
    chaos: NetChaos
    time_scale: float = 1.0
    rejoin: bool = False
    rejoin_attempt: int = 0


class _ControlState:
    """Mutable, loop-local state the control pump feeds."""

    def __init__(self) -> None:
        self.addrs: Dict[int, Tuple[str, int]] = {}
        self.addr_event = asyncio.Event()
        self.start_event = asyncio.Event()
        self.wake = asyncio.Event()
        self.resync_event = asyncio.Event()
        self.resync_source: Optional[int] = None
        self.pending_script: Optional[PeerScript] = None
        self.script_dead: Set[int] = set()
        self.shutdown = False
        self.transport: Optional[LossyDatagramTransport] = None


def _safe_send(ctrl: Connection, message: object) -> None:
    """Best-effort control send (the supervisor may already be gone)."""
    try:
        ctrl.send(message)
    except (BrokenPipeError, OSError, ValueError):
        pass


def _pump_ctrl(
    ctrl: Connection,
    loop: asyncio.AbstractEventLoop,
    inbox: "asyncio.Queue[Tuple[object, ...]]",
    stop: threading.Event,
) -> None:
    """Reader thread: pipe → asyncio inbox (the loop thread owns state)."""
    while not stop.is_set():
        try:
            if not ctrl.poll(0.05):
                continue
            message = ctrl.recv()
        except (EOFError, OSError):
            message = (SHUTDOWN,)
        try:
            loop.call_soon_threadsafe(inbox.put_nowait, message)
        except RuntimeError:
            return  # loop already closed; nothing left to deliver to
        if isinstance(message, tuple) and message and message[0] == SHUTDOWN:
            return


async def _control_loop(
    peer: GossipPeer,
    state: _ControlState,
    inbox: "asyncio.Queue[Tuple[object, ...]]",
) -> None:
    """Apply supervisor commands to the peer, in arrival order."""
    while True:
        message = await inbox.get()
        tag = message[0]
        if tag == ADDRS:
            addrs = {
                int(v): (str(host), int(port))
                for v, (host, port) in dict(message[1]).items()  # type: ignore[call-overload]
            }
            state.addrs = addrs
            peer.addr_of.update(addrs)
            if state.transport is not None:
                for v, addr in addrs.items():
                    state.transport.update_route(addr, v)
            state.addr_event.set()
        elif tag == START:
            state.start_event.set()
        elif tag == ABORT:
            peer.abort()
        elif tag == REVIVE:
            victim = int(message[1])  # type: ignore[call-overload]
            peer.dead.discard(victim)
            peer.note_alive(victim)
        elif tag == RESYNC:
            state.resync_source = int(message[1])  # type: ignore[call-overload]
            state.resync_event.set()
        elif tag == SCRIPT:
            state.pending_script = message[1]  # type: ignore[assignment]
            state.script_dead = set(message[2])  # type: ignore[arg-type]
            state.wake.set()
        elif tag == SHUTDOWN:
            state.shutdown = True
            state.wake.set()
            state.addr_event.set()
            state.start_event.set()
            state.resync_event.set()
            peer.stop()
            return


def _snapshot(peer: GossipPeer) -> Dict[str, object]:
    """One peer's reportable state, as plain picklable types."""
    full = (1 << peer.proc.n) - 1
    stats = peer.transport.stats if peer.transport is not None else None
    return {
        "holds": peer.holds,
        "rounds_completed": peer.rounds_completed,
        "complete": peer.holds == full,
        "died_at": peer.died_at,
        "transcript": [
            (e.round, e.sender, e.message, e.destinations)
            for e in peer.transcript
        ],
        "survival_transcript": [
            (e.round, e.sender, e.message, e.destinations)
            for e in peer.survival_transcript
        ],
        "retransmissions": peer.retransmissions,
        "duplicates_suppressed": peer.duplicates_suppressed,
        "stats": (
            (stats.sent, stats.dropped, stats.delayed,
             stats.suppressed_after_kill)
            if stats is not None
            else (0, 0, 0, 0)
        ),
    }


def _sigkill_self() -> None:
    """Die like production dies: abruptly, with no cleanup whatsoever."""
    os.kill(os.getpid(), signal.SIGKILL)


async def _run_phases(
    spec: PeerSpec,
    peer: GossipPeer,
    state: _ControlState,
    ctrl: Connection,
) -> None:
    """Drive the peer through its phases until the supervisor says stop."""
    if spec.rejoin:
        await state.resync_event.wait()
        if state.shutdown:
            return
        if state.resync_source is None:
            raise GossipRuntimeError(
                f"peer {spec.vertex}: resync command without a source"
            )
        try:
            await peer.fetch_resync(state.resync_source)
        except RuntimeDeadlineError as err:
            _safe_send(ctrl, (DEADLINE, spec.vertex, err.phase, str(err)))
            return
        _safe_send(ctrl, (RESYNCED, spec.vertex, peer.holds))
    else:
        try:
            await peer.run_online(spec.horizon)
        except RuntimeDeadlineError as err:
            _safe_send(ctrl, (DEADLINE, spec.vertex, err.phase, str(err)))
        _safe_send(ctrl, (PHASE1, spec.vertex, _snapshot(peer)))

    while True:
        if state.shutdown:
            return
        script = state.pending_script
        if script is not None:
            state.pending_script = None
            peer.resume()
            peer.dead.update(state.script_dead)
            try:
                await peer.run_script(script)
            except RuntimeDeadlineError as err:
                _safe_send(ctrl, (DEADLINE, spec.vertex, err.phase, str(err)))
            except GossipRuntimeError as err:
                _safe_send(ctrl, (ERROR, spec.vertex, repr(err)))
            _safe_send(ctrl, (PHASE2, spec.vertex, _snapshot(peer)))
        state.wake.clear()
        if state.pending_script is None and not state.shutdown:
            await state.wake.wait()


async def _child_main(spec: PeerSpec, ctrl: Connection) -> None:
    loop = asyncio.get_running_loop()
    clock: Clock = (
        RealClock() if spec.time_scale >= 1.0 else ScaledClock(spec.time_scale)
    )
    procs = build_processors(spec.labeled)
    me = procs[spec.vertex]

    def report_suspect(reporter: int, victim: int) -> None:
        _safe_send(ctrl, (SUSPECT, reporter, victim))

    kill_round = spec.chaos.sigkill_round_of(spec.vertex)
    kill_via: Optional[Callable[[], None]] = None
    if kill_round is not None:
        kill_via = _sigkill_self
    else:
        kill_round = spec.chaos.kill_round_of(spec.vertex)

    peer = GossipPeer(
        spec.vertex,
        me,
        config=spec.config,
        clock=clock,
        suspect=report_suspect,
        kill_round=kill_round,
        kill_via=kill_via,
    )

    inbox: "asyncio.Queue[Tuple[object, ...]]" = asyncio.Queue()
    state = _ControlState()
    stop_pump = threading.Event()
    pump = threading.Thread(
        target=_pump_ctrl, args=(ctrl, loop, inbox, stop_pump),
        name=f"ctrl-pump-{spec.vertex}", daemon=True,
    )
    pump.start()
    control = asyncio.ensure_future(_control_loop(peer, state, inbox))

    raw_transport, _ = await loop.create_datagram_endpoint(
        lambda: PeerProtocol(peer), local_addr=("127.0.0.1", 0)
    )
    wrapped: Optional[LossyDatagramTransport] = None
    heartbeat: Optional["asyncio.Task[None]"] = None
    try:
        port = raw_transport.get_extra_info("sockname")[1]
        _safe_send(ctrl, (HELLO, spec.vertex, int(port)))
        budget = 2.0 * spec.config.run_timeout
        try:
            await clock.wait_for(state.addr_event.wait(), budget)
        except asyncio.TimeoutError:
            _safe_send(ctrl, (DEADLINE, spec.vertex, "rendezvous",
                              "no address book within the child watchdog"))
            return
        if state.shutdown:
            return
        wrapped = LossyDatagramTransport(
            raw_transport,
            chaos=spec.chaos,
            src=spec.vertex,
            vertex_of_addr={addr: v for v, addr in state.addrs.items()},
            clock=clock,
        )
        state.transport = wrapped
        peer.attach(wrapped, state.addrs)
        try:
            await clock.wait_for(state.start_event.wait(), budget)
        except asyncio.TimeoutError:
            _safe_send(ctrl, (DEADLINE, spec.vertex, "rendezvous",
                              "no start signal within the child watchdog"))
            return
        if state.shutdown:
            return
        heartbeat = asyncio.ensure_future(peer.heartbeat_loop())
        try:
            await clock.wait_for(
                _run_phases(spec, peer, state, ctrl), budget
            )
        except asyncio.TimeoutError:
            _safe_send(ctrl, (DEADLINE, spec.vertex, "child",
                              "child watchdog expired; exiting as an orphan"))
    finally:
        stop_pump.set()
        peer.stop()
        control.cancel()
        if heartbeat is not None:
            heartbeat.cancel()
        await asyncio.gather(control, *((heartbeat,) if heartbeat else ()),
                             return_exceptions=True)
        if wrapped is not None:
            wrapped.close()
        elif not raw_transport.is_closing():
            raw_transport.close()


def _child_entry(spec: PeerSpec, ctrl: Connection) -> None:
    """Process entry point (target of the spawn context)."""
    if spec.rejoin and spec.rejoin_attempt <= spec.chaos.rejoin_crashes:
        # Seeded rejoin-chaos: this restart attempt dies on boot.
        os.kill(os.getpid(), signal.SIGKILL)
    try:
        asyncio.run(_child_main(spec, ctrl))
    except BaseException as exc:  # noqa: BLE001 — report, then die quietly
        _safe_send(ctrl, (ERROR, spec.vertex, repr(exc)))
    finally:
        _safe_send(ctrl, (BYE, spec.vertex))
        try:
            ctrl.close()
        except OSError:
            pass
