"""Supervisor of the multi-process gossip runtime.

:class:`Supervisor` is the parent of a one-OS-process-per-peer fleet
(children described in :mod:`repro.runtime.proc`): it spawns the
processes (spawn start method), runs the rendezvous (children bind
their own UDP sockets and report ports; the supervisor broadcasts the
address book), and then *watches* — a ``multiprocessing.connection.wait``
loop over every child's control pipe **and** process sentinel.  Peer
death is detected on two channels that cross-check each other:

* the **process sentinel** fires the instant a child exits (a real
  ``SIGKILL`` is visible in milliseconds, exit code ``-9``);
* the **heartbeat detector** inside every surviving peer reports the
  victim over the control plane (``fail_after`` staleness — the same
  detector the single-process runner trusts).

The supervisor logs both to a structured
:class:`~repro.runtime.incidents.IncidentJournal`, but only acts once
the *peers'* detector has fired (or a grace period lapsed): phase-1
state at the freeze is produced by the deterministic stall wavefront of
the fence barriers, not by how fast the host scheduler delivered a
sentinel, which is what keeps
:meth:`ProcResult.deterministic_summary` reproducible per seed.

Resolution is policy-driven (:class:`RestartPolicy`):

* ``mode="restart"`` — restart the victim with capped exponential
  backoff, re-rendezvous it on a fresh port, resync its hold bitset
  from a live neighbour (``RESYNC_REQ``/``RESYNC`` over UDP), then
  drive a :func:`repro.core.recovery.plan_repair_rounds` completion
  schedule across the whole fleet: **full gossip re-completes**.  A
  victim that keeps dying is declared fail-stop after ``max_restarts``
  attempts and the run degrades to the replan path.
* ``mode="replan"`` — coordinate the existing
  :func:`repro.core.survival.survive` replan across the surviving
  processes: *gossip among survivors*, validated by
  :func:`~repro.core.survival.validate_survival`.

Whole-run deadlines degrade to a typed
:class:`~repro.exceptions.RuntimeDeadlineError` carrying a partial
:class:`ProcResult` — the supervisor never hangs on a lost fleet.

Front door: :func:`run_gossip_processes`.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.gossip import GossipPlan, NetworkSpec, gossip
from ..core.recovery import _tree_adjacency, plan_repair_rounds
from ..core.survival import survive, survivor_coverage, validate_survival
from ..exceptions import (
    GossipRuntimeError,
    PeerDeadError,
    RuntimeDeadlineError,
    SupervisorError,
)
from ..simulator.lossy import FaultyExecutionResult
from ..simulator.state import labeled_holdings
from .clock import RealClock
from .incidents import Incident, IncidentJournal
from .peer import RuntimeConfig, TranscriptEntry
from .proc import (
    ABORT,
    ADDRS,
    BYE,
    DEADLINE,
    ERROR,
    HELLO,
    PHASE1,
    PHASE2,
    RESYNC,
    RESYNCED,
    REVIVE,
    SCRIPT,
    SHUTDOWN,
    START,
    SUSPECT,
    PeerSpec,
    _child_entry,
)
from .runner import ObservedDeaths, RuntimeResult, slice_peer_scripts
from .transport import NetChaos, TransportStats

__all__ = ["RestartPolicy", "ProcResult", "Supervisor", "run_gossip_processes"]

#: Real-seconds quantum of one control-plane pump.
_PUMP_QUANTUM = 0.05

#: Real-seconds budget for the cooperative part of shutdown before the
#: supervisor starts killing stragglers.
_SHUTDOWN_GRACE = 5.0


@dataclass(frozen=True)
class RestartPolicy:
    """How the supervisor resolves a detected peer death.

    Attributes
    ----------
    mode:
        ``"replan"`` — re-schedule around the dead with :func:`survive`
        (gossip among survivors); ``"restart"`` — restart the victim,
        resync its state from a live neighbour, and re-complete full
        gossip.
    max_restarts:
        Restart attempts per victim before declaring it fail-stop and
        falling back to the replan path.
    backoff_base / backoff_cap:
        Capped exponential backoff between restart attempts, in the
        run's virtual seconds: attempt ``k`` waits
        ``min(cap, base * 2**(k-1))``.
    """

    mode: str = "replan"
    max_restarts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in ("replan", "restart"):
            raise GossipRuntimeError(
                f"unknown restart policy mode {self.mode!r}; "
                "choose 'replan' or 'restart'"
            )
        if self.max_restarts < 1:
            raise GossipRuntimeError("max_restarts must be >= 1")
        if self.backoff_base <= 0 or self.backoff_cap < self.backoff_base:
            raise GossipRuntimeError(
                "restart backoff must satisfy 0 < base <= cap"
            )

    def backoff(self, attempt: int) -> float:
        """Virtual seconds to wait before restart ``attempt`` (1-based)."""
        return min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))


@dataclass(frozen=True)
class ProcResult(RuntimeResult):
    """A :class:`RuntimeResult` plus the supervision story.

    Attributes
    ----------
    mode:
        How the run resolved: ``"fault-free"``, ``"rejoin"`` (victims
        restarted and full gossip re-completed), ``"replan"`` (gossip
        among survivors), or ``"partial"`` (deadline expired; carried
        by the :class:`~repro.exceptions.RuntimeDeadlineError`).
    restarts:
        Total restart attempts performed across all victims.
    incidents:
        The structured incident journal, in detection order.  Incidents
        carry wall-clock offsets, so they are *excluded* from
        :meth:`deterministic_summary`; ``mode`` and ``restarts`` are
        pure functions of the seed and are included.
    """

    mode: str = "fault-free"
    restarts: int = 0
    incidents: Tuple[Incident, ...] = ()

    def deterministic_summary(self) -> Dict[str, object]:
        summary = super().deterministic_summary()
        summary["mode"] = self.mode
        summary["restarts"] = self.restarts
        return summary


class _ChildHandle:
    """The supervisor's ledger entry for one spawned peer process."""

    def __init__(
        self,
        vertex: int,
        process: "multiprocessing.process.BaseProcess",
        conn: "mp_connection.Connection",
        *,
        rejoin: bool = False,
    ) -> None:
        self.vertex = vertex
        self.process = process
        self.conn = conn
        self.rejoin = rejoin
        self.conn_open = True
        self.alive = True
        self.exitcode: Optional[int] = None
        self.port: Optional[int] = None
        self.phase1: Optional[Dict[str, object]] = None
        self.phase2: Optional[Dict[str, object]] = None
        self.resynced: Optional[int] = None
        self.deadline: Optional[Tuple[str, str]] = None
        self.error: Optional[str] = None
        self.bye = False


class Supervisor:
    """Parent of a one-process-per-peer fleet (see module docstring)."""

    def __init__(
        self,
        plan: GossipPlan,
        *,
        chaos: Optional[NetChaos] = None,
        config: Optional[RuntimeConfig] = None,
        policy: Optional[RestartPolicy] = None,
        time_scale: float = 1.0,
    ) -> None:
        if not 0.0 < time_scale <= 1.0:
            raise GossipRuntimeError(f"time_scale {time_scale} not in (0, 1]")
        self.plan = plan
        self.chaos = chaos if chaos is not None else NetChaos()
        self.config = config if config is not None else RuntimeConfig()
        self.policy = policy if policy is not None else RestartPolicy()
        self.time_scale = time_scale
        self.n = plan.labeled.n
        self.horizon = plan.schedule.total_time
        self.journal = IncidentJournal()

        self._ctx = multiprocessing.get_context("spawn")
        self._clock = RealClock()
        self._handles: Dict[int, _ChildHandle] = {}
        self._crashed: Set[int] = set()
        self._suspected: Set[int] = set()
        self._resolved: Set[int] = set()
        self._restarts = 0
        self._shutting_down = False
        self._started = 0.0
        self._deadline = 0.0

    # -- journal helpers ------------------------------------------------
    def _elapsed(self) -> float:
        """Virtual seconds since the run started."""
        return (self._clock.time() - self._started) / self.time_scale

    def _record(self, kind: str, **kwargs: object) -> Incident:
        return self.journal.record(
            kind, wall_seconds=self._elapsed(), **kwargs  # type: ignore[arg-type]
        )

    # -- process plumbing ------------------------------------------------
    def _spawn(self, vertex: int, *, rejoin: bool = False,
               attempt: int = 0) -> _ChildHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        spec = PeerSpec(
            vertex=vertex,
            horizon=self.horizon,
            labeled=self.plan.labeled,
            config=self.config,
            chaos=self.chaos,
            time_scale=self.time_scale,
            rejoin=rejoin,
            rejoin_attempt=attempt,
        )
        process = self._ctx.Process(
            target=_child_entry,
            args=(spec, child_conn),
            name=f"gossip-peer-{vertex}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _ChildHandle(vertex, process, parent_conn, rejoin=rejoin)
        self._handles[vertex] = handle
        return handle

    def _send(self, handle: _ChildHandle, message: Tuple[object, ...]) -> None:
        if not handle.conn_open:
            return
        try:
            handle.conn.send(message)
        except (BrokenPipeError, OSError, ValueError):
            handle.conn_open = False

    def _broadcast(self, message: Tuple[object, ...]) -> None:
        for handle in self._handles.values():
            if handle.alive:
                self._send(handle, message)

    # -- the event pump ---------------------------------------------------
    def _pump(self, timeout: float) -> None:
        """One control-plane turn: wait, then drain everything ready."""
        by_conn: Dict[object, _ChildHandle] = {}
        by_sentinel: Dict[object, _ChildHandle] = {}
        for handle in self._handles.values():
            if handle.conn_open:
                by_conn[handle.conn] = handle
            if handle.alive:
                by_sentinel[handle.process.sentinel] = handle
        waitables: List[object] = list(by_conn) + list(by_sentinel)
        if not waitables:
            return
        for obj in mp_connection.wait(waitables, timeout=max(timeout, 0.0)):
            handle = by_conn.get(obj)
            if handle is not None:
                self._drain(handle)
            else:
                self._on_exit(by_sentinel[obj])

    def _drain(self, handle: _ChildHandle) -> None:
        try:
            while handle.conn.poll(0):
                self._dispatch(handle, handle.conn.recv())
        except (EOFError, OSError):
            handle.conn_open = False

    def _dispatch(self, handle: _ChildHandle, message: object) -> None:
        if not isinstance(message, tuple) or not message:
            return
        tag = message[0]
        if tag == HELLO:
            handle.port = int(message[2])
        elif tag == SUSPECT:
            reporter, victim = int(message[1]), int(message[2])
            if victim not in self._suspected and victim not in self._resolved:
                self._suspected.add(victim)
                self._record(
                    "suspicion", vertex=victim,
                    detected_by=f"peer:{reporter}",
                    details=f"peer {reporter} reported {victim} silent/unresponsive",
                )
        elif tag == PHASE1:
            handle.phase1 = dict(message[2])  # type: ignore[call-overload]
        elif tag == PHASE2:
            handle.phase2 = dict(message[2])  # type: ignore[call-overload]
        elif tag == RESYNCED:
            handle.resynced = int(message[2])
        elif tag == DEADLINE:
            handle.deadline = (str(message[2]), str(message[3]))
            self._record(
                "deadline", vertex=int(message[1]),
                details=f"{message[2]}: {message[3]}",
            )
        elif tag == ERROR:
            handle.error = str(message[2])
            self._record("child-error", vertex=int(message[1]),
                         details=str(message[2]))
        elif tag == BYE:
            handle.bye = True

    def _on_exit(self, handle: _ChildHandle) -> None:
        handle.process.join(timeout=1.0)
        handle.alive = False
        handle.exitcode = handle.process.exitcode
        self._drain(handle)  # collect anything it said on the way out
        unexpected = (
            not handle.bye
            and not self._shutting_down
            and not handle.rejoin
            and handle.vertex not in self._crashed
            and handle.vertex not in self._resolved
        )
        if unexpected:
            self._crashed.add(handle.vertex)
            self._record(
                "crash-detected", vertex=handle.vertex,
                detected_by="sentinel",
                details=f"exitcode {handle.exitcode}",
            )

    # -- bounded waits -----------------------------------------------------
    def _remaining(self) -> float:
        return self._deadline - self._clock.time()

    def _await(self, predicate: Callable[[], bool], what: str) -> None:
        while not predicate():
            remaining = self._remaining()
            if remaining <= 0.0:
                raise self._run_deadline(what)
            self._pump(min(_PUMP_QUANTUM, remaining))

    def _run_deadline(self, what: str) -> RuntimeDeadlineError:
        """Journal and build the whole-run deadline error (with partial)."""
        self._record("deadline", details=f"run: {what}")
        return RuntimeDeadlineError(
            f"supervised run exceeded "
            f"run_timeout={self.config.run_timeout:.2f}s during {what}",
            partial=self._partial_result(),
            phase="run",
        )

    def _pump_for(self, real_seconds: float, what: str) -> None:
        """Keep pumping for a fixed wall interval (restart backoff)."""
        until = self._clock.time() + real_seconds
        while self._clock.time() < until:
            remaining = self._remaining()
            if remaining <= 0.0:
                raise self._run_deadline(what)
            self._pump(min(_PUMP_QUANTUM, until - self._clock.time(), remaining))

    # -- the run -------------------------------------------------------------
    def run(self) -> ProcResult:
        """Spawn, rendezvous, execute, and resolve one supervised run."""
        self._started = self._clock.time()
        self._deadline = self._started + self.config.run_timeout * self.time_scale
        try:
            for vertex in range(self.n):
                self._spawn(vertex)
            self._rendezvous()
            return self._run_phases()
        finally:
            self._shutdown_all()

    def _rendezvous(self) -> None:
        self._await(
            lambda: all(h.port is not None for h in self._handles.values())
            or bool(self._crashed),
            "rendezvous",
        )
        if self._crashed:
            raise SupervisorError(
                f"peer(s) {sorted(self._crashed)} died during rendezvous, "
                "before the protocol started",
                incidents=self.journal.incidents,
            )
        book = {
            v: ("127.0.0.1", h.port) for v, h in self._handles.items()
        }
        self._broadcast((ADDRS, book))
        self._broadcast((START,))

    def _run_phases(self) -> ProcResult:
        handles = self._handles

        def phase1_settled() -> bool:
            return all(
                h.phase1 is not None or not h.alive for h in handles.values()
            )

        self._await(
            lambda: phase1_settled() or bool(self._crashed or self._suspected),
            "phase 1",
        )
        if not self._crashed and not self._suspected:
            return self._finish_fault_free()

        # -- a death was detected: wait for the peers' detector to agree.
        # Sentinels are instant but scheduling-dependent; the heartbeat
        # detector fires on the deterministic fail_after staleness, and
        # the freeze only happens after it (or a bounded grace), so
        # holds-at-abort stay a pure function of the seed.
        grace = self._clock.time() + 2 * self.config.fail_after * self.time_scale

        def detection_settled() -> bool:
            return (
                not (self._crashed - self._suspected)
                or self._clock.time() >= grace
            )

        self._await(detection_settled, "failure detection")
        victims = set(self._crashed) | set(self._suspected)
        self._resolved |= victims
        self._record(
            "abort",
            details=f"freezing phase 1 around dead={sorted(victims)}",
        )
        self._broadcast((ABORT,))
        self._await(
            lambda: all(
                h.phase1 is not None or v in victims or not h.alive
                for v, h in handles.items()
            ),
            "phase-1 freeze",
        )

        holds_at_abort, dead_rounds = self._holds_at_abort(victims)
        if self.policy.mode == "restart":
            result = self._resolve_restart(victims, holds_at_abort)
            if result is not None:
                return result
        return self._resolve_replan(victims, dead_rounds, holds_at_abort)

    def _finish_fault_free(self) -> ProcResult:
        for handle in self._handles.values():
            if handle.deadline is not None:
                raise RuntimeDeadlineError(
                    f"peer {handle.vertex} missed a deadline: "
                    f"{handle.deadline[1]}",
                    partial=self._partial_result(),
                    phase=handle.deadline[0],
                )
            if handle.error is not None:
                raise SupervisorError(
                    f"peer {handle.vertex} reported an error: {handle.error}",
                    incidents=self.journal.incidents,
                )
        complete = all(
            bool(h.phase1 and h.phase1["complete"])
            for h in self._handles.values()
        )
        holds = [
            int(h.phase1["holds"]) if h.phase1 else 0
            for h in self._handles.values()
        ]
        return self._result(
            mode="fault-free",
            complete=complete,
            coverage=1.0 if complete else self._fill(holds),
            final_holds=holds,
            dead=(),
            components=(),
            survival_rounds=0,
        )

    # -- failure accounting -------------------------------------------------
    def _holds_at_abort(
        self, victims: Set[int]
    ) -> Tuple[List[int], Dict[int, int]]:
        """Hold bitsets at the freeze, reconstructing lost victims.

        A SIGKILLed process takes its memory with it; its holds are
        reconstructed from the offline schedule truncated at the seeded
        death round — sound because phase 1 is in lockstep with the
        offline schedule (the fence barriers deliver exactly the
        offline rounds, in order, until the death).
        """
        labels = self.plan.labeled.labels()
        holds: List[int] = []
        dead_rounds: Dict[int, int] = {}
        for v in range(self.n):
            handle = self._handles[v]
            snap = handle.phase1
            if snap is not None:
                holds.append(int(snap["holds"]))
                if snap["died_at"] is not None:
                    dead_rounds[v] = int(snap["died_at"])  # type: ignore[arg-type]
            else:
                death_round = self.chaos.sigkill_round_of(v)
                if death_round is None:
                    death_round = 0
                holds.append(self._victim_holds(v, death_round, labels))
                dead_rounds[v] = death_round
        for v in victims:
            snap = self._handles[v].phase1
            dead_rounds.setdefault(
                v, int(snap["rounds_completed"]) if snap else 0
            )
        return holds, dead_rounds

    def _victim_holds(self, vertex: int, death_round: int,
                      labels: Sequence[int]) -> int:
        holds = 1 << labels[vertex]
        for t, rnd in enumerate(self.plan.schedule.rounds):
            if t + 1 > death_round:
                break
            for tx in rnd:
                if vertex in tx.destinations:
                    holds |= 1 << tx.message
        return holds

    # -- resolution: restart-with-rejoin -------------------------------------
    def _resolve_restart(
        self, victims: Set[int], holds_at_abort: List[int]
    ) -> Optional[ProcResult]:
        """Restart victims, resync state, re-complete full gossip.

        Returns ``None`` when any victim exhausted its restart budget
        (declared fail-stop) — the caller then degrades to the replan
        path around *all* victims.
        """
        rejoined: Dict[int, _ChildHandle] = {}
        for victim in sorted(victims):
            handle: Optional[_ChildHandle] = None
            for attempt in range(1, self.policy.max_restarts + 1):
                self._restarts += 1
                backoff = self.policy.backoff(attempt)
                self._record(
                    "restart", vertex=victim, attempt=attempt,
                    details=f"backoff {backoff:.3f}s",
                )
                self._pump_for(backoff * self.time_scale, "restart backoff")
                candidate = self._spawn(victim, rejoin=True, attempt=attempt)
                if self._await_hello(candidate):
                    handle = candidate
                    break
                self._record(
                    "rejoin-failed", vertex=victim, attempt=attempt,
                    detected_by="sentinel",
                    details=f"exitcode {candidate.exitcode}",
                )
            if handle is None:
                self._record(
                    "fail-stop-declared", vertex=victim,
                    attempt=self.policy.max_restarts,
                    details="restart budget exhausted",
                )
                return None
            rejoined[victim] = handle

        # Re-rendezvous: fresh ports for the rejoined, revive everywhere.
        book = {
            v: ("127.0.0.1", h.port)
            for v, h in self._handles.items()
            if h.port is not None
        }
        self._broadcast((ADDRS, book))
        for victim in sorted(rejoined):
            self._broadcast((REVIVE, victim))
        self._broadcast((START,))

        adjacency = _tree_adjacency(self.plan.tree)
        live = [v for v in range(self.n) if v not in victims]
        for victim, handle in sorted(rejoined.items()):
            neighbours = [u for u in adjacency[victim] if u not in victims]
            source = neighbours[0] if neighbours else min(live)
            self._record("resync", vertex=victim,
                         details=f"state transfer from peer {source}")
            self._send(handle, (RESYNC, source))
        self._await(
            lambda: all(
                h.resynced is not None or not h.alive
                for h in rejoined.values()
            ),
            "rejoin state transfer",
        )
        if any(h.resynced is None for h in rejoined.values()):
            self._record(
                "fail-stop-declared",
                vertex=next(
                    v for v, h in rejoined.items() if h.resynced is None
                ),
                details="rejoined process died during state transfer",
            )
            return None

        # Completion: plan fault-free repair rounds from the merged
        # state and script them across the whole fleet.
        holds = list(holds_at_abort)
        for victim, handle in rejoined.items():
            holds[victim] = int(handle.resynced or 0)
        rounds = plan_repair_rounds(
            adjacency, holds, self.n, max_rounds=4 * self.n + 16
        )
        scripts = slice_peer_scripts(rounds, len(rounds))
        for v, script in scripts.items():
            self._send(self._handles[v], (SCRIPT, script, ()))
        self._await(
            lambda: all(
                self._handles[v].phase2 is not None
                or not self._handles[v].alive
                for v in scripts
            ),
            "rejoin completion schedule",
        )

        final_holds = list(holds)
        for v in scripts:
            snap = self._handles[v].phase2
            if snap is None:
                raise SupervisorError(
                    f"peer {v} died during the rejoin completion schedule",
                    incidents=self.journal.incidents,
                )
            final_holds[v] = int(snap["holds"])
        full = (1 << self.n) - 1
        complete = all(h == full for h in final_holds)
        if complete:
            self._record(
                "recovered",
                details=f"full gossip re-completed in {len(rounds)} rounds",
            )
        return self._result(
            mode="rejoin",
            complete=complete,
            coverage=1.0 if complete else self._fill(final_holds),
            final_holds=final_holds,
            dead=(),
            components=(),
            survival_rounds=len(rounds),
        )

    def _await_hello(self, handle: _ChildHandle) -> bool:
        self._await(
            lambda: handle.port is not None or not handle.alive,
            "rejoin rendezvous",
        )
        return handle.port is not None

    # -- resolution: survive() replan ----------------------------------------
    def _resolve_replan(
        self,
        victims: Set[int],
        dead_rounds: Dict[int, int],
        holds_at_abort: List[int],
    ) -> ProcResult:
        """Gossip among survivors: the runner's failover, across processes."""
        diag_horizon = max([self.horizon, *dead_rounds.values()])
        model = ObservedDeaths(dead_from=tuple(sorted(dead_rounds.items())))
        faulty = FaultyExecutionResult(
            complete=False,
            total_time=diag_horizon,
            completion_times=[None] * self.n,
            duplicate_deliveries=0,
            final_holds=list(holds_at_abort),
            model=model,
            initial_holds=tuple(labeled_holdings(self.plan.labeled.labels())),
            n_messages=self.n,
        )
        outcome = survive(self.plan.graph, self.plan, faulty)
        scripts = slice_peer_scripts(
            outcome.schedule.rounds, outcome.schedule.total_time
        )
        dead = set(outcome.diagnosis.dead)
        for victim in dead & set(scripts):
            raise PeerDeadError(
                f"survival schedule assigns work to dead peer {victim}",
                peer=victim,
            )
        self._record(
            "failover-replan",
            details=(
                f"{outcome.schedule.total_time} survival rounds around "
                f"dead={sorted(dead)}"
            ),
        )
        dead_list = tuple(sorted(dead))
        for v, script in scripts.items():
            self._send(self._handles[v], (SCRIPT, script, dead_list))
        self._await(
            lambda: all(
                self._handles[v].phase2 is not None
                or not self._handles[v].alive
                for v in scripts
            ),
            "survival replay",
        )

        final_holds = list(holds_at_abort)
        for v in scripts:
            snap = self._handles[v].phase2
            if snap is None:
                raise SupervisorError(
                    f"survivor {v} died during the survival replay",
                    incidents=self.journal.incidents,
                )
            final_holds[v] = int(snap["holds"])
        validate_survival(
            outcome.diagnosis, outcome.labels, final_holds,
            before=holds_at_abort,
        )
        for v in outcome.diagnosis.live:
            if final_holds[v] != outcome.final_holds[v]:
                raise GossipRuntimeError(
                    f"determinism breach: peer {v} ended holding "
                    f"{final_holds[v]:#x}, the replan predicted "
                    f"{outcome.final_holds[v]:#x}"
                )
        coverage = survivor_coverage(
            outcome.diagnosis, outcome.labels, final_holds
        )
        return self._result(
            mode="replan",
            complete=False,
            coverage=coverage,
            final_holds=final_holds,
            dead=outcome.diagnosis.dead,
            components=outcome.diagnosis.components,
            survival_rounds=outcome.schedule.total_time,
        )

    # -- result assembly -------------------------------------------------------
    def _fill(self, holds: Sequence[int]) -> float:
        held = sum(h.bit_count() for h in holds)
        return held / (self.n * self.n) if self.n else 1.0

    def _result(
        self,
        *,
        mode: str,
        complete: bool,
        coverage: float,
        final_holds: Sequence[int],
        dead: Tuple[int, ...],
        components: Tuple[Tuple[int, ...], ...],
        survival_rounds: int,
    ) -> ProcResult:
        if not components and not dead:
            components = (tuple(range(self.n)),)
        transcript: List[TranscriptEntry] = []
        survival: List[TranscriptEntry] = []
        retransmissions = 0
        duplicates = 0
        stats = TransportStats()
        rounds_completed = 0
        dead_set = set(dead)
        for v, handle in self._handles.items():
            snap = handle.phase2 or handle.phase1
            if snap is None:
                continue
            for entry in snap["transcript"]:  # type: ignore[union-attr]
                rnd, sender, message, dests = entry
                transcript.append(TranscriptEntry(
                    round=rnd, sender=sender, message=message,
                    destinations=tuple(dests),
                ))
            for entry in snap["survival_transcript"]:  # type: ignore[union-attr]
                rnd, sender, message, dests = entry
                survival.append(TranscriptEntry(
                    round=rnd, sender=sender, message=message,
                    destinations=tuple(dests),
                ))
            retransmissions += int(snap["retransmissions"])  # type: ignore[arg-type]
            duplicates += int(snap["duplicates_suppressed"])  # type: ignore[arg-type]
            sent, dropped, delayed, suppressed = snap["stats"]  # type: ignore[misc]
            stats = stats.merged(TransportStats(
                sent=sent, dropped=dropped, delayed=delayed,
                suppressed_after_kill=suppressed,
            ))
            if v not in dead_set:
                rounds_completed = max(
                    rounds_completed, int(snap["rounds_completed"])  # type: ignore[arg-type]
                )
        return ProcResult(
            n=self.n,
            horizon=self.horizon,
            complete=complete,
            coverage=coverage,
            wall_seconds=self._elapsed(),
            rounds_completed=rounds_completed,
            transcript=tuple(sorted(transcript, key=lambda e: (e.round, e.sender))),
            survival_transcript=tuple(
                sorted(survival, key=lambda e: (e.round, e.sender))
            ),
            final_holds=tuple(final_holds),
            dead=dead,
            components=components,
            survival_rounds=survival_rounds,
            retransmissions=retransmissions,
            duplicates_suppressed=duplicates,
            stats=stats,
            mode=mode,
            restarts=self._restarts,
            incidents=self.journal.incidents,
        )

    def _partial_result(self) -> ProcResult:
        labels = self.plan.labeled.labels()
        holds: List[int] = []
        for v in range(self.n):
            handle = self._handles.get(v)
            snap = (handle.phase2 or handle.phase1) if handle else None
            holds.append(int(snap["holds"]) if snap else 1 << labels[v])
        return self._result(
            mode="partial",
            complete=False,
            coverage=self._fill(holds),
            final_holds=holds,
            dead=tuple(sorted(self._crashed | self._suspected)),
            components=(),
            survival_rounds=0,
        )

    # -- teardown ------------------------------------------------------------
    def _shutdown_all(self) -> None:
        self._shutting_down = True
        for handle in self._handles.values():
            self._send(handle, (SHUTDOWN,))
        grace = self._clock.time() + _SHUTDOWN_GRACE
        while (
            any(h.alive for h in self._handles.values())
            and self._clock.time() < grace
        ):
            self._pump(_PUMP_QUANTUM)
        for handle in self._handles.values():
            if handle.alive and handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=1.0)
                handle.alive = False
            if handle.conn_open:
                try:
                    handle.conn.close()
                except OSError:
                    pass
                handle.conn_open = False
            try:
                handle.process.close()
            except ValueError:
                pass  # still not reaped; the daemon flag covers us


def run_gossip_processes(
    network: "NetworkSpec | GossipPlan",
    *,
    algorithm: str = "concurrent-updown",
    chaos: Optional[NetChaos] = None,
    config: Optional[RuntimeConfig] = None,
    policy: Optional[RestartPolicy] = None,
    time_scale: float = 1.0,
) -> ProcResult:
    """Gossip with one OS process per peer, under supervision.

    The multi-process front door, mirroring
    :func:`~repro.runtime.runner.run_gossip_network`:

    Parameters
    ----------
    network:
        Anything :func:`repro.core.gossip.resolve_network` accepts, or a
        ready-made :class:`~repro.core.gossip.GossipPlan`.
    algorithm:
        Tree-gossiping algorithm for the plan (ignored when a plan is
        passed).
    chaos:
        Socket-level fault profile, including real-crash injection
        (``sigkill``); default none.
    config:
        Runtime timing knobs, shipped to every child.
    policy:
        Death-resolution policy (:class:`RestartPolicy`); default
        ``mode="replan"``.
    time_scale:
        Child clock scale in ``(0, 1]`` (1.0 = real time).  Children
        cannot share a Python object, so the scale — not a clock — is
        what travels.

    Raises
    ------
    RuntimeDeadlineError
        The whole-run deadline expired; carries the partial
        :class:`ProcResult`.
    SupervisorError
        A control-plane failure that is not an ordinary peer death.
    """
    plan = network if isinstance(network, GossipPlan) else gossip(
        network, algorithm=algorithm
    )
    supervisor = Supervisor(
        plan,
        chaos=chaos,
        config=config,
        policy=policy,
        time_scale=time_scale,
    )
    return supervisor.run()
