"""Injectable monotonic clock for the asyncio runtime.

Every time-dependent decision in :mod:`repro.runtime` — retransmit
backoff, heartbeat cadence, failure-detector staleness, round and
whole-run deadlines — goes through a :class:`Clock` instance instead of
calling :func:`time.monotonic` / :func:`asyncio.sleep` directly.  The
conventions gate (``scripts/check_conventions.py``) enforces this: bare
``asyncio.sleep`` / ``time.time`` / ``time.monotonic`` /
``asyncio.wait_for`` calls are forbidden in ``src/repro/runtime``
outside this module.

Why injectable: the runtime's tests need to shrink every timeout by a
constant factor to run a whole failure-detection scenario in tens of
milliseconds, and a pluggable clock keeps that a configuration change
rather than a monkeypatch.  :class:`ScaledClock` is that test double; a
fully virtual clock could implement the same protocol.
"""

from __future__ import annotations

import asyncio
import time
from typing import Awaitable, Protocol, TypeVar

__all__ = ["Clock", "RealClock", "ScaledClock"]

T = TypeVar("T")


class Clock(Protocol):
    """What the runtime needs from a time source."""

    def time(self) -> float:
        """Current monotonic time in seconds (origin unspecified)."""
        ...

    async def sleep(self, seconds: float) -> None:
        """Suspend the calling task for ``seconds``."""
        ...

    async def wait_for(self, awaitable: Awaitable[T], timeout: float) -> T:
        """Await ``awaitable``, raising :class:`asyncio.TimeoutError` after
        ``timeout`` seconds."""
        ...


class RealClock:
    """The production clock: monotonic time and real asyncio waits."""

    def time(self) -> float:
        return time.monotonic()

    async def sleep(self, seconds: float) -> None:
        await asyncio.sleep(seconds)

    async def wait_for(self, awaitable: Awaitable[T], timeout: float) -> T:
        return await asyncio.wait_for(awaitable, timeout)


class ScaledClock:
    """A clock whose *sleeps and timeouts* run ``scale`` times faster.

    ``scale=0.1`` turns a 2-second failure-detection window into 200 ms
    of real waiting while reported :meth:`time` stays in *virtual*
    seconds (real elapsed divided by ``scale``), so staleness arithmetic
    against configured intervals is unchanged.  Used by the test suite;
    production code always gets :class:`RealClock`.
    """

    def __init__(self, scale: float = 0.1) -> None:
        if not 0.0 < scale <= 1.0:
            from ..exceptions import GossipRuntimeError

            raise GossipRuntimeError(f"clock scale {scale} not in (0, 1]")
        self.scale = scale
        self._origin = time.monotonic()

    def time(self) -> float:
        return (time.monotonic() - self._origin) / self.scale

    async def sleep(self, seconds: float) -> None:
        await asyncio.sleep(seconds * self.scale)

    async def wait_for(self, awaitable: Awaitable[T], timeout: float) -> T:
        return await asyncio.wait_for(awaitable, timeout * self.scale)
