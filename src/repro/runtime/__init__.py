"""Real-network asyncio gossip runtime.

Executes the paper's *online* ConcurrentUpDown protocol
(:mod:`repro.core.online`) over actual UDP sockets on localhost: one
asyncio task per vertex, each owning an
:class:`~repro.core.online.OnlineProcessor` and learning about the rest
of the network only through datagrams.  The robustness layer — acks with
seeded-exponential-backoff retransmission, heartbeat failure detection,
round/run deadlines, and a survival replan driven by
:func:`repro.core.survival.survive` — turns the lossless synchronous
model into something that completes on a lossy asynchronous medium and
degrades to *gossip among survivors* when peers die.

Front doors: :func:`run_gossip_network` (one asyncio task per vertex in
this interpreter) and :func:`run_gossip_processes` (one supervised OS
process per vertex — see :mod:`repro.runtime.supervisor`).  Fault
injection: :class:`NetChaos` (deterministic per seed, byte-for-byte
reproducible — see :mod:`repro.runtime.transport`), including *real*
process crashes (``sigkill``) under the supervisor.
"""

from .clock import Clock, RealClock, ScaledClock
from .incidents import Incident, IncidentJournal
from .peer import (
    GossipPeer,
    PeerProtocol,
    PeerScript,
    RuntimeConfig,
    TranscriptEntry,
)
from .runner import ObservedDeaths, RuntimeResult, run_gossip_network
from .supervisor import (
    ProcResult,
    RestartPolicy,
    Supervisor,
    run_gossip_processes,
)
from .transport import LossyDatagramTransport, NetChaos, TransportStats
from .wire import (
    ACK,
    DATA,
    FENCE,
    HEARTBEAT,
    PHASE_ONLINE,
    PHASE_REJOIN,
    PHASE_SURVIVAL,
    RESYNC,
    RESYNC_REQ,
    WIRE_SIZE,
    Datagram,
    decode,
    encode,
)

__all__ = [
    "Clock",
    "RealClock",
    "ScaledClock",
    "GossipPeer",
    "PeerProtocol",
    "PeerScript",
    "RuntimeConfig",
    "TranscriptEntry",
    "ObservedDeaths",
    "RuntimeResult",
    "run_gossip_network",
    "Supervisor",
    "RestartPolicy",
    "ProcResult",
    "run_gossip_processes",
    "Incident",
    "IncidentJournal",
    "LossyDatagramTransport",
    "NetChaos",
    "TransportStats",
    "DATA",
    "FENCE",
    "ACK",
    "HEARTBEAT",
    "RESYNC_REQ",
    "RESYNC",
    "PHASE_ONLINE",
    "PHASE_SURVIVAL",
    "PHASE_REJOIN",
    "WIRE_SIZE",
    "Datagram",
    "encode",
    "decode",
]
