"""Wire format of the runtime's UDP protocol.

One datagram = one fixed-size binary record (:data:`WIRE_SIZE` bytes,
network byte order)::

    magic  kind  phase  round   sender  payload
    u8     u8    u8     u32     u16     u16

Kinds:

* ``DATA``      — a protocol transmission: ``payload`` is the message id
  multicast by ``sender`` in round ``round`` of ``phase``.  Doubles as
  the sender's round fence: the model allows at most one send per
  processor per round, so one DATA from a neighbour for round ``t`` is
  also the statement "nothing else is coming from me for ``t``".
* ``FENCE``     — an empty round marker: ``sender`` transmitted nothing
  to this receiver in round ``round`` (pure synchronisation).
* ``ACK``       — receiver-side acknowledgement of a DATA/FENCE;
  ``payload`` echoes the acknowledged kind, ``round`` the acknowledged
  round.  ACKs are never themselves acknowledged.
* ``HEARTBEAT`` — liveness beacon; ``round`` carries the sender's
  heartbeat sequence number (used for deterministic loss draws), not a
  protocol round.
* ``RESYNC_REQ`` — a restarted peer asking a live neighbour for a copy
  of its hold bitset (the rejoin protocol's state-transfer request).
  ``round`` is always 0; the request is retransmitted until the full
  state arrived.
* ``RESYNC``    — one 16-bit chunk of a hold bitset answering a
  ``RESYNC_REQ``: ``round`` is the chunk index (bits
  ``16*round .. 16*round + 15``), ``payload`` the chunk value.  Chunks
  are idempotent, so the responder re-answers every request copy.

``phase`` separates the execution regimes (``PHASE_ONLINE`` — the
paper's online ConcurrentUpDown, ``PHASE_SURVIVAL`` — the post-failure
replan, ``PHASE_REJOIN`` — state resync after a supervised restart) so
retransmission dedup keys never collide across a replan or a rejoin.

Decoding is strict: wrong size, wrong magic, or an unknown kind raises
the typed :class:`~repro.exceptions.WireFormatError`; the peer protocol
counts and drops such datagrams rather than crashing the run.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..exceptions import WireFormatError

__all__ = [
    "DATA",
    "FENCE",
    "ACK",
    "HEARTBEAT",
    "RESYNC_REQ",
    "RESYNC",
    "PHASE_ONLINE",
    "PHASE_SURVIVAL",
    "PHASE_REJOIN",
    "WIRE_SIZE",
    "Datagram",
    "encode",
    "decode",
]

_MAGIC = 0x47  # "G"
_STRUCT = struct.Struct("!BBBIHH")

DATA = 1
FENCE = 2
ACK = 3
HEARTBEAT = 4
RESYNC_REQ = 5
RESYNC = 6
_KINDS = frozenset({DATA, FENCE, ACK, HEARTBEAT, RESYNC_REQ, RESYNC})

PHASE_ONLINE = 0
PHASE_SURVIVAL = 1
PHASE_REJOIN = 2

WIRE_SIZE = _STRUCT.size


@dataclass(frozen=True)
class Datagram:
    """One decoded protocol datagram (see the module docstring)."""

    kind: int
    phase: int
    round: int
    sender: int
    payload: int

    @property
    def needs_ack(self) -> bool:
        """Whether the protocol retransmits this datagram until acked."""
        return self.kind in (DATA, FENCE)


def encode(dgram: Datagram) -> bytes:
    """Serialise ``dgram`` to its fixed-size wire representation."""
    if dgram.kind not in _KINDS:
        raise WireFormatError(f"unknown datagram kind {dgram.kind}")
    return _STRUCT.pack(
        _MAGIC, dgram.kind, dgram.phase, dgram.round, dgram.sender, dgram.payload
    )


def decode(data: bytes) -> Datagram:
    """Parse one datagram; raise :class:`WireFormatError` on malformed input."""
    if len(data) != WIRE_SIZE:
        raise WireFormatError(
            f"datagram is {len(data)} bytes; the protocol record is {WIRE_SIZE}"
        )
    magic, kind, phase, rnd, sender, payload = _STRUCT.unpack(data)
    if magic != _MAGIC:
        raise WireFormatError(f"bad magic byte 0x{magic:02x}")
    if kind not in _KINDS:
        raise WireFormatError(f"unknown datagram kind {kind}")
    return Datagram(kind=kind, phase=phase, round=rnd, sender=sender, payload=payload)
