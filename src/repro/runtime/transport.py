"""Deterministic fault injection at the datagram-transport layer.

The simulator injects faults inside the execution loop
(:mod:`repro.simulator.lossy`); the runtime injects them where a real
deployment meets them — between ``sendto`` and the wire.
:class:`LossyDatagramTransport` wraps an asyncio datagram transport and
applies a :class:`NetChaos` profile to every outgoing datagram:

* **drop** — the datagram is silently destroyed;
* **delay** — the datagram is held back a drawn latency before the real
  send (consecutive datagrams with different draws *reorder*);
* **kill-peer** — once the owning peer reaches its configured kill
  round, the transport goes dark: every later send is swallowed and the
  peer protocol drops every later receive (a fail-stop process death,
  observable only as silence);
* **sigkill** — the multi-process analogue: the supervisor-spawned peer
  process sends itself ``SIGKILL`` upon reaching the configured round,
  so the whole interpreter dies abruptly (no cleanup, no goodbye) and
  the :class:`~repro.runtime.supervisor.Supervisor` must detect and
  resolve a *real* process death.

Attempt tracking (the retransmission index) is keyed by
``(dst, kind, phase, round)`` — the logical identity of a reliable
record — never by raw datagram bytes: the sender prunes an entry via
:meth:`LossyDatagramTransport.forget` the moment the record is acked,
and sweeps stale rounds with
:meth:`LossyDatagramTransport.expire_before`, so the table stays
bounded by the handful of in-flight rounds regardless of run length.
Heartbeats are deliberately *not* tracked: their sequence number already
rides in the ``round`` field, so every beacon is a fresh draw without
any table entry (the untracked, ever-growing heartbeat keys were
exactly the old leak).

Determinism mirrors the :class:`~repro.simulator.lossy.FaultModel`
contract exactly and reuses its splitmix64 mixer: every draw is a pure
function of ``(seed, tag, src, dst, kind, phase, round, attempt)``,
where ``attempt`` counts identical retransmissions of the same record.
So:

* the same seed reproduces the same drops and delays on real sockets,
  on any platform, regardless of event-loop scheduling;
* a *retransmission* is a fresh, independent draw (the attempt index is
  part of the key) — retries are not doomed to repeat the original
  loss, the property the ack/retransmit layer's liveness rests on;
* heartbeats are drawn per sequence number, so loss of one beacon never
  implies loss of the next.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Set, Tuple

from ..exceptions import GossipRuntimeError
from ..simulator.lossy import _uniform
from .clock import Clock
from .wire import ACK, DATA, FENCE, RESYNC, RESYNC_REQ, WIRE_SIZE, decode

__all__ = ["NetChaos", "TransportStats", "LossyDatagramTransport"]

# Domain-separation tags (disjoint from the simulator FaultModel's) so a
# socket-level draw never collides with a simulator draw on one seed.
_TAG_NET_DROP = 0x7D09
_TAG_NET_DELAY = 0x7DE1


@dataclass(frozen=True)
class NetChaos:
    """A seeded, deterministic socket-level chaos profile.

    Attributes
    ----------
    seed:
        Root seed; every drop/delay decision is a pure function of it.
    drop_rate:
        Per-send-attempt probability that a datagram is destroyed.
    delay_rate:
        Per-send-attempt probability that a datagram is delayed (and
        thus possibly reordered past its successors).
    delay_max:
        Upper bound, in seconds, of the drawn extra latency.
    kill:
        ``(victim, round)`` pairs: ``victim`` fail-stops (stops sending
        *and* receiving) upon reaching protocol round ``round``.
    sigkill:
        ``(victim, round)`` pairs for the multi-process runtime:
        ``victim``'s OS process sends itself ``SIGKILL`` upon reaching
        round ``round`` — an abrupt, real process death the supervisor
        must detect.  Ignored by the single-process runner.
    rejoin_crashes:
        How many restart attempts of a sigkilled victim die again on
        boot (before saying hello).  Exercises the supervisor's capped
        restart/backoff ladder and its fail-stop declaration; 0 means
        the first restart survives.
    """

    seed: int = 0
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    delay_max: float = 0.0
    kill: Tuple[Tuple[int, int], ...] = ()
    sigkill: Tuple[Tuple[int, int], ...] = ()
    rejoin_crashes: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "delay_rate"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise GossipRuntimeError(f"{name}={p} is not a probability")
        if self.delay_max < 0.0:
            raise GossipRuntimeError("delay_max must be >= 0")
        if self.delay_rate > 0.0 and self.delay_max == 0.0:
            raise GossipRuntimeError("delay_rate > 0 needs delay_max > 0")
        if self.rejoin_crashes < 0:
            raise GossipRuntimeError("rejoin_crashes must be >= 0")

    @property
    def is_null(self) -> bool:
        """Whether this profile can never perturb a datagram."""
        return (
            self.drop_rate == 0.0
            and self.delay_rate == 0.0
            and not self.kill
            and not self.sigkill
        )

    def kill_round_of(self, vertex: int) -> Optional[int]:
        """The round at which ``vertex`` fail-stops (None = never)."""
        for victim, rnd in self.kill:
            if victim == vertex:
                return rnd
        return None

    def sigkill_round_of(self, vertex: int) -> Optional[int]:
        """The round at which ``vertex``'s *process* SIGKILLs itself."""
        for victim, rnd in self.sigkill:
            if victim == vertex:
                return rnd
        return None

    # -- deterministic draws ------------------------------------------
    def drops(self, src: int, dst: int, kind: int, phase: int,
              rnd: int, attempt: int) -> bool:
        """Whether this send attempt is destroyed."""
        if self.drop_rate == 0.0:
            return False
        u = _uniform(self.seed, _TAG_NET_DROP, src, dst, kind, phase, rnd, attempt)
        return u < self.drop_rate

    def delay_of(self, src: int, dst: int, kind: int, phase: int,
                 rnd: int, attempt: int) -> float:
        """Extra latency in seconds for this send attempt (0.0 = none)."""
        if self.delay_rate == 0.0:
            return 0.0
        u = _uniform(self.seed, _TAG_NET_DELAY, src, dst, kind, phase, rnd, attempt)
        if u >= self.delay_rate:
            return 0.0
        # Rescale the accepting draw to [0, 1) for the latency magnitude:
        # one hash serves both the accept/reject and the jitter amount.
        return (u / self.delay_rate) * self.delay_max


@dataclass
class TransportStats:
    """Counters one :class:`LossyDatagramTransport` accumulates."""

    sent: int = 0
    dropped: int = 0
    delayed: int = 0
    suppressed_after_kill: int = 0

    def merged(self, other: "TransportStats") -> "TransportStats":
        """Element-wise sum (for fleet-level reporting)."""
        return TransportStats(
            sent=self.sent + other.sent,
            dropped=self.dropped + other.dropped,
            delayed=self.delayed + other.delayed,
            suppressed_after_kill=(
                self.suppressed_after_kill + other.suppressed_after_kill
            ),
        )


#: Reliable-record kinds whose retransmission attempts are tracked
#: (fresh loss draw per copy).  HEARTBEAT is deliberately absent: the
#: beacon's sequence number already lives in the wire ``round`` field,
#: so every beacon is a fresh draw with no table entry to leak.
_TRACKED_KINDS = frozenset({DATA, FENCE, ACK, RESYNC_REQ, RESYNC})

#: (dst vertex, kind, phase, round) — the logical identity of one
#: reliable record, the attempt-table key.
_AttemptKey = Tuple[int, int, int, int]


class LossyDatagramTransport:
    """A chaos-injecting facade over one peer's datagram transport.

    Exposes the one method the peer protocol needs (``sendto``) plus the
    kill switch.  Draw keys are read straight off the wire header, so
    the wrapper needs no cooperation from the caller beyond well-formed
    protocol datagrams; the destination vertex id comes from the address
    table built by the runner (and refreshed via :meth:`update_route`
    when a supervised peer rejoins on a new port).
    """

    def __init__(
        self,
        inner: asyncio.DatagramTransport,
        *,
        chaos: NetChaos,
        src: int,
        vertex_of_addr: Mapping[Tuple[str, int], int],
        clock: Clock,
    ) -> None:
        self._inner = inner
        self._chaos = chaos
        self._src = src
        self._vertex_of_addr = dict(vertex_of_addr)
        self._clock = clock
        self._attempts: Dict[_AttemptKey, int] = {}
        self._pending: Set[asyncio.Task] = set()
        self.killed = False
        self.stats = TransportStats()

    def kill(self) -> None:
        """Fail-stop this endpoint: swallow every subsequent send."""
        self.killed = True

    def update_route(self, addr: Tuple[str, int], vertex: int) -> None:
        """Bind ``addr`` to ``vertex`` (a rejoined peer's fresh port)."""
        self._vertex_of_addr[addr] = vertex

    # -- attempt-table hygiene (satellite: the table must not grow) ----
    @property
    def attempts_tracked(self) -> int:
        """How many reliable records currently have attempt state."""
        return len(self._attempts)

    def forget(self, dst: int, kind: int, phase: int, rnd: int) -> None:
        """Drop attempt state for one acked/settled reliable record."""
        self._attempts.pop((dst, kind, phase, rnd), None)

    def expire_before(self, phase: int, rnd: int) -> None:
        """Sweep attempt state for ``phase`` rounds strictly below ``rnd``.

        Re-acks of very old duplicates keep their entries until the
        caller's sweep horizon passes them, so the sweep must trail the
        live round window (peers can lag a few rounds, never many — a
        neighbour stuck at round ``t`` starves everyone else of its
        round-``t`` token within two fences).
        """
        stale = [
            key for key in self._attempts if key[2] == phase and key[3] < rnd
        ]
        for key in stale:
            del self._attempts[key]

    def sendto(self, data: bytes, addr: Tuple[str, int]) -> None:
        """Send one protocol datagram through the chaos profile."""
        if self.killed:
            self.stats.suppressed_after_kill += 1
            return
        if self._chaos.is_null or len(data) != WIRE_SIZE:
            self.stats.sent += 1
            self._inner.sendto(data, addr)
            return
        dgram = decode(data)
        dst = self._vertex_of_addr.get(addr, -1)
        attempt = 0
        if dgram.kind in _TRACKED_KINDS:
            key = (dst, dgram.kind, dgram.phase, dgram.round)
            attempt = self._attempts.get(key, 0)
            self._attempts[key] = attempt + 1
        if self._chaos.drops(self._src, dst, dgram.kind, dgram.phase,
                             dgram.round, attempt):
            self.stats.dropped += 1
            return
        delay = self._chaos.delay_of(self._src, dst, dgram.kind, dgram.phase,
                                     dgram.round, attempt)
        if delay <= 0.0:
            self.stats.sent += 1
            self._inner.sendto(data, addr)
            return
        self.stats.delayed += 1
        task = asyncio.ensure_future(self._send_later(data, addr, delay))
        self._pending.add(task)
        task.add_done_callback(self._pending.discard)

    async def _send_later(self, data: bytes, addr: Tuple[str, int],
                          delay: float) -> None:
        await self._clock.sleep(delay)
        if not self.killed and not self._inner.is_closing():
            self.stats.sent += 1
            self._inner.sendto(data, addr)

    def close(self) -> None:
        """Cancel in-flight delayed sends and close the real transport."""
        for task in tuple(self._pending):
            task.cancel()
        self._pending.clear()
        if not self._inner.is_closing():
            self._inner.close()
