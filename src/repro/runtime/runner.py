"""Orchestration of a real-network gossip run.

:func:`run_gossip_network` is the runtime's front door.  It plans
gossip with the library's offline pipeline (:func:`repro.core.gossip`),
boots one :class:`~repro.runtime.peer.GossipPeer` per vertex on its own
localhost UDP socket, and lets the peers execute the online protocol
among themselves.  The runner is the *experiment harness*, not part of
the distributed algorithm: peers exchange knowledge only via datagrams,
while the runner merely starts tasks, watches for suspicion reports, and
collects final state for accounting.

Failure path (the robustness contract)
--------------------------------------
When a peer's failure detector suspects a neighbour, the runner:

1. aborts the online phase (phase 1) on every peer;
2. snapshots each peer's hold bitset, fabricates a
   :class:`~repro.simulator.lossy.FaultyExecutionResult` plus an
   :class:`ObservedDeaths` fault model from the observed deaths, and
   hands both to the *existing* :func:`repro.core.survival.survive`
   machinery — the runtime replans with exactly the code the simulator
   stack uses;
3. slices the replanned survival schedule into per-peer scripts
   (:class:`~repro.runtime.peer.PeerScript`) and drives phase 2 on the
   same sockets among the survivors;
4. strictly checks the degraded completion semantics with
   :func:`repro.core.survival.validate_survival` ("gossip among
   survivors", nothing delivered to the dead).

Deadlines degrade gracefully rather than hang: a peer that cannot close
a round inside ``round_timeout`` raises the typed
:class:`~repro.exceptions.RuntimeDeadlineError` (``phase="round"``), and
the whole run is bounded by ``run_timeout`` (``phase="run"``); both
carry the partial :class:`RuntimeResult` collected at the deadline,
mirroring the simulator's ``makespan is None`` convention.

Determinism contract
--------------------
Everything in :meth:`RuntimeResult.deterministic_summary` is a pure
function of ``(network, algorithm, chaos profile, seed)``: the phase-1
transcript, holds at abort, the death set, the survival replan, and the
final coverage.  Wall-clock fields (``wall_seconds``, retransmission
counts, transport stats) are explicitly excluded — they measure the
machine, not the protocol.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.gossip import GossipPlan, NetworkSpec, gossip
from ..core.online import build_processors
from ..core.survival import (
    SurvivalResult,
    survive,
    survivor_coverage,
    validate_survival,
)
from ..exceptions import (
    GossipRuntimeError,
    PeerDeadError,
    RuntimeDeadlineError,
)
from ..simulator.lossy import FaultModel, FaultyExecutionResult
from ..simulator.state import labeled_holdings
from .clock import Clock, RealClock
from .peer import GossipPeer, PeerProtocol, PeerScript, RuntimeConfig, TranscriptEntry
from .transport import LossyDatagramTransport, NetChaos, TransportStats

__all__ = [
    "ObservedDeaths",
    "RuntimeResult",
    "run_gossip_network",
    "slice_peer_scripts",
]


@dataclass(frozen=True)
class ObservedDeaths(FaultModel):
    """A scripted fault model replaying deaths the runtime observed.

    Bridges the runtime's failure detector into the simulator-stack
    survival machinery: :func:`repro.core.survival.diagnose_survival`
    only ever asks :meth:`fail_stopped` / :meth:`link_failed`, so a
    model that answers from an explicit death list makes ``survive()``
    replan for exactly the peers the detector buried.
    """

    dead_from: Tuple[Tuple[int, int], ...] = ()

    def fail_stopped(self, time: int, v: int) -> bool:
        for victim, rnd in self.dead_from:
            if victim == v and time >= rnd:
                return True
        return False


@dataclass(frozen=True)
class RuntimeResult:
    """Everything observable about one real-network gossip run.

    Attributes
    ----------
    n / horizon:
        Network size and the offline schedule's total time (the phase-1
        round budget).
    complete:
        Whether *full* gossip finished — every processor holds every
        message.  False whenever anyone died, even if the survivors
        reached full degraded coverage.
    coverage:
        Fraction of guaranteed (live processor, message) pairs held at
        the end — 1.0 for a fault-free run, and 1.0 again when the
        survival replan delivered everything the degraded semantics owe.
    wall_seconds:
        Real-network makespan (injectable-clock seconds); measures the
        machine, excluded from :meth:`deterministic_summary`.
    rounds_completed:
        Highest phase-1 round any live peer fully executed.
    transcript / survival_transcript:
        Every phase-1 / phase-2 multicast actually performed, in
        ``(round, sender)`` order — phase 1 is byte-for-byte the offline
        schedule on a fault-free run.
    final_holds:
        Per-vertex hold bitsets at the end (dead peers keep their
        at-death snapshot).
    dead / components:
        The failure diagnosis (empty / one full component when nothing
        died).
    survival_rounds:
        Rounds of the phase-2 replan (0 when phase 2 never ran).
    retransmissions / duplicates_suppressed / stats:
        Reliability-layer work: datagrams retransmitted, duplicate
        deliveries absorbed by dedup, transport chaos counters.
    """

    n: int
    horizon: int
    complete: bool
    coverage: float
    wall_seconds: float
    rounds_completed: int
    transcript: Tuple[TranscriptEntry, ...]
    survival_transcript: Tuple[TranscriptEntry, ...]
    final_holds: Tuple[int, ...]
    dead: Tuple[int, ...]
    components: Tuple[Tuple[int, ...], ...]
    survival_rounds: int
    retransmissions: int
    duplicates_suppressed: int
    stats: TransportStats = field(default_factory=TransportStats)

    @property
    def makespan(self) -> Optional[float]:
        """Wall-clock completion time, ``None`` when gossip degraded.

        The runtime mirror of
        :attr:`repro.simulator.engine.ExecutionResult.makespan`.
        """
        return self.wall_seconds if self.complete else None

    def deterministic_summary(self) -> Dict[str, object]:
        """The per-seed-reproducible view of this run.

        Byte-for-byte identical across repeated runs with the same
        ``(network, algorithm, chaos, seed)``; excludes every field that
        depends on scheduling latency or the host machine.
        """
        return {
            "n": self.n,
            "horizon": self.horizon,
            "complete": self.complete,
            "coverage": round(self.coverage, 12),
            "rounds_completed": self.rounds_completed,
            "transcript": [
                (e.round, e.sender, e.message, e.destinations)
                for e in self.transcript
            ],
            "survival_transcript": [
                (e.round, e.sender, e.message, e.destinations)
                for e in self.survival_transcript
            ],
            "final_holds": list(self.final_holds),
            "dead": list(self.dead),
            "components": [list(c) for c in self.components],
            "survival_rounds": self.survival_rounds,
        }


class _Network:
    """The booted fleet: peers, sockets, chaos wrappers, background tasks."""

    def __init__(self, plan: GossipPlan, *, chaos: NetChaos,
                 config: RuntimeConfig, clock: Clock) -> None:
        self.plan = plan
        self.chaos = chaos
        self.config = config
        self.clock = clock
        self.n = plan.labeled.n
        self.horizon = plan.schedule.total_time
        self.suspected: Set[int] = set()
        self.suspicion_event = asyncio.Event()
        self.peers: List[GossipPeer] = []
        self.lossy: List[LossyDatagramTransport] = []
        self.heartbeat_tasks: List["asyncio.Task[None]"] = []
        self.started = 0.0

        procs = build_processors(plan.labeled)
        for v in range(self.n):
            self.peers.append(
                GossipPeer(
                    v,
                    procs[v],
                    config=config,
                    clock=clock,
                    suspect=self._on_suspicion,
                    kill_round=chaos.kill_round_of(v),
                )
            )

    def _on_suspicion(self, reporter: int, victim: int) -> None:
        self.suspected.add(victim)
        self.suspicion_event.set()

    async def start(self) -> None:
        """Bind every peer to its own localhost UDP socket and wire chaos."""
        loop = asyncio.get_running_loop()
        transports: List[asyncio.DatagramTransport] = []
        addr_of: Dict[int, Tuple[str, int]] = {}
        for peer in self.peers:
            transport, _ = await loop.create_datagram_endpoint(
                lambda bound=peer: PeerProtocol(bound),
                local_addr=("127.0.0.1", 0),
            )
            transports.append(transport)
            addr_of[peer.vertex] = transport.get_extra_info("sockname")
        vertex_of_addr = {addr: v for v, addr in addr_of.items()}
        for peer, transport in zip(self.peers, transports):
            wrapped = LossyDatagramTransport(
                transport,
                chaos=self.chaos,
                src=peer.vertex,
                vertex_of_addr=vertex_of_addr,
                clock=self.clock,
            )
            peer.attach(wrapped, addr_of)
            self.lossy.append(wrapped)
        self.started = self.clock.time()
        self.heartbeat_tasks = [
            asyncio.ensure_future(p.heartbeat_loop()) for p in self.peers
        ]

    async def shutdown(self) -> None:
        """Stop heartbeats, cancel delayed sends, close every socket."""
        for peer in self.peers:
            peer.stop()
        for task in self.heartbeat_tasks:
            task.cancel()
        if self.heartbeat_tasks:
            await asyncio.gather(*self.heartbeat_tasks, return_exceptions=True)
        for wrapped in self.lossy:
            wrapped.close()

    # -- accounting ----------------------------------------------------
    def snapshot_result(
        self,
        *,
        complete: bool,
        coverage: float,
        dead: Tuple[int, ...] = (),
        components: Tuple[Tuple[int, ...], ...] = (),
        survival_rounds: int = 0,
    ) -> RuntimeResult:
        stats = TransportStats()
        for wrapped in self.lossy:
            stats = stats.merged(wrapped.stats)
        if not components and not dead:
            components = (tuple(range(self.n)),)
        live = [p for p in self.peers if p.vertex not in set(dead)]
        return RuntimeResult(
            n=self.n,
            horizon=self.horizon,
            complete=complete,
            coverage=coverage,
            wall_seconds=self.clock.time() - self.started,
            rounds_completed=max((p.rounds_completed for p in live), default=0),
            transcript=tuple(
                sorted(
                    (e for p in self.peers for e in p.transcript),
                    key=lambda e: (e.round, e.sender),
                )
            ),
            survival_transcript=tuple(
                sorted(
                    (e for p in self.peers for e in p.survival_transcript),
                    key=lambda e: (e.round, e.sender),
                )
            ),
            final_holds=tuple(p.holds for p in self.peers),
            dead=dead,
            components=components,
            survival_rounds=survival_rounds,
            retransmissions=sum(p.retransmissions for p in self.peers),
            duplicates_suppressed=sum(p.duplicates_suppressed for p in self.peers),
            stats=stats,
        )

    def _fill_coverage(self) -> float:
        """Plain fill ratio of the hold matrix (for partial results)."""
        held = sum(p.holds.bit_count() for p in self.peers)
        return held / (self.n * self.n) if self.n else 1.0

    # -- phase drivers -------------------------------------------------
    async def run(self) -> RuntimeResult:
        """Phase 1, and on observed deaths the survival replan (phase 2)."""
        online = asyncio.gather(
            *(asyncio.ensure_future(p.run_online(self.horizon)) for p in self.peers),
            return_exceptions=True,
        )
        watch = asyncio.ensure_future(self.suspicion_event.wait())
        await asyncio.wait({online, watch}, return_when=asyncio.FIRST_COMPLETED)

        if not self.suspicion_event.is_set():
            watch.cancel()
            outcomes = await online
            self._reraise(outcomes, allow_deadline=False)
            complete = all(p.proc.is_complete() for p in self.peers)
            return self.snapshot_result(complete=complete, coverage=1.0)

        # A death was detected: abort phase 1 and replan for survivors.
        for peer in self.peers:
            peer.abort()
        outcomes = await online
        watch.cancel()
        self._reraise(outcomes, allow_deadline=True)
        return await self._run_survival()

    def _reraise(self, outcomes: Sequence[object], *, allow_deadline: bool) -> None:
        """Propagate peer-task failures, attaching the partial result."""
        for item in outcomes:
            if isinstance(item, RuntimeDeadlineError):
                if allow_deadline:
                    continue  # superseded by the survival replan
                raise RuntimeDeadlineError(
                    str(item),
                    partial=self.snapshot_result(
                        complete=False, coverage=self._fill_coverage()
                    ),
                    phase=item.phase,
                ) from item
            if isinstance(item, BaseException):
                raise item

    async def _run_survival(self) -> RuntimeResult:
        """Replan with :func:`survive` and drive phase 2 on the sockets."""
        dead_rounds: Dict[int, int] = {}
        for peer in self.peers:
            if peer.died_at is not None:
                dead_rounds[peer.vertex] = peer.died_at
        for victim in self.suspected:
            dead_rounds.setdefault(victim, self.peers[victim].rounds_completed)
        holds_at_abort = [p.holds for p in self.peers]

        diag_horizon = max([self.horizon, *(r for r in dead_rounds.values())])
        model = ObservedDeaths(
            dead_from=tuple(sorted(dead_rounds.items()))
        )
        faulty = FaultyExecutionResult(
            complete=False,
            total_time=diag_horizon,
            completion_times=[None] * self.n,
            duplicate_deliveries=0,
            final_holds=list(holds_at_abort),
            model=model,
            initial_holds=tuple(labeled_holdings(self.plan.labeled.labels())),
            n_messages=self.n,
        )
        outcome = survive(self.plan.graph, self.plan, faulty)

        scripts = _peer_scripts(outcome, self.n)
        dead = set(outcome.diagnosis.dead)
        for peer in self.peers:
            if peer.vertex in dead:
                continue
            peer.resume()
            peer.dead.update(dead)
        for victim in dead & set(scripts):
            raise PeerDeadError(
                f"survival schedule assigns work to dead peer {victim}",
                peer=victim,
            )

        tasks = [
            asyncio.ensure_future(self.peers[v].run_script(script))
            for v, script in scripts.items()
        ]
        if tasks:
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            self._reraise(outcomes, allow_deadline=False)

        final_holds = [p.holds for p in self.peers]
        validate_survival(
            outcome.diagnosis, outcome.labels, final_holds, before=holds_at_abort
        )
        for v in outcome.diagnosis.live:
            if final_holds[v] != outcome.final_holds[v]:
                raise GossipRuntimeError(
                    f"determinism breach: peer {v} ended holding "
                    f"{final_holds[v]:#x}, the replan predicted "
                    f"{outcome.final_holds[v]:#x}"
                )
        coverage = survivor_coverage(
            outcome.diagnosis, outcome.labels, final_holds
        )
        return self.snapshot_result(
            complete=False,
            coverage=coverage,
            dead=outcome.diagnosis.dead,
            components=outcome.diagnosis.components,
            survival_rounds=outcome.schedule.total_time,
        )


def slice_peer_scripts(
    rounds: Sequence[Sequence[object]], horizon: int
) -> Dict[int, PeerScript]:
    """Slice a merged round schedule into per-peer send/expect scripts.

    Every peer receives *only its own rows*: what it sends each round
    and what will land on it each time step — the same locality
    discipline phase 1 gets from
    :class:`~repro.core.online.OnlineProcessor`.  Works for any list of
    :class:`~repro.simulator.engine.Round`-shaped rounds: the runner
    slices :func:`survive` replans, the supervisor additionally slices
    :func:`repro.core.recovery.plan_repair_rounds` rejoin-completion
    schedules.
    """
    scripts: Dict[int, PeerScript] = {}

    def script_of(v: int) -> PeerScript:
        if v not in scripts:
            scripts[v] = PeerScript(horizon=horizon)
        return scripts[v]

    for t, rnd in enumerate(rounds):
        for tx in rnd:  # type: ignore[attr-defined]
            dests = tuple(sorted(tx.destinations))
            script_of(tx.sender).sends[t] = (tx.message, dests)
            for d in dests:
                script_of(d).expects[t + 1] = (tx.sender, tx.message)
    return scripts


def _peer_scripts(outcome: SurvivalResult, n: int) -> Dict[int, PeerScript]:
    """The runner's view of :func:`slice_peer_scripts` (survival replans)."""
    return slice_peer_scripts(outcome.schedule.rounds, outcome.schedule.total_time)


async def _run_async(plan: GossipPlan, *, chaos: NetChaos,
                     config: RuntimeConfig, clock: Clock) -> RuntimeResult:
    network = _Network(plan, chaos=chaos, config=config, clock=clock)
    await network.start()
    try:
        try:
            return await clock.wait_for(network.run(), config.run_timeout)
        except asyncio.TimeoutError:
            raise RuntimeDeadlineError(
                f"gossip run exceeded run_timeout={config.run_timeout:.2f}s",
                partial=network.snapshot_result(
                    complete=False, coverage=network._fill_coverage()
                ),
                phase="run",
            ) from None
    finally:
        await network.shutdown()


def run_gossip_network(
    network: "NetworkSpec | GossipPlan",
    *,
    algorithm: str = "concurrent-updown",
    chaos: Optional[NetChaos] = None,
    config: Optional[RuntimeConfig] = None,
    clock: Optional[Clock] = None,
) -> RuntimeResult:
    """Gossip for real: UDP peers on localhost executing the online plan.

    Parameters
    ----------
    network:
        Anything :func:`repro.core.gossip.resolve_network` accepts (a
        ``Graph``, a ``Tree``, or a family string like ``"grid:16"``),
        or a ready-made :class:`GossipPlan`.
    algorithm:
        Tree-gossiping algorithm for the plan (ignored when a plan is
        passed).
    chaos:
        Socket-level fault profile; default none (a fault-free run).
    config:
        Runtime timing knobs (:class:`~repro.runtime.peer.RuntimeConfig`).
    clock:
        Injectable clock; default :class:`~repro.runtime.clock.RealClock`.

    Raises
    ------
    RuntimeDeadlineError
        A round or the whole run missed its deadline; carries the
        partial :class:`RuntimeResult`.
    """
    plan = network if isinstance(network, GossipPlan) else gossip(
        network, algorithm=algorithm
    )
    return asyncio.run(
        _run_async(
            plan,
            chaos=chaos if chaos is not None else NetChaos(),
            config=config if config is not None else RuntimeConfig(),
            clock=clock if clock is not None else RealClock(),
        )
    )
