"""One gossiping peer: a UDP endpoint driving local protocol state.

A :class:`GossipPeer` is what the paper's Section 4 promises can exist:
a processor that schedules its own transmissions from nothing but its
``(i, j, k)`` block and the messages that have arrived on its links.
The peer owns an :class:`~repro.core.online.OnlineProcessor` and a
datagram socket; **no peer ever inspects another peer's memory** — every
bit of remote knowledge arrives as a datagram.

Round synchronisation (phase 1, the online protocol)
----------------------------------------------------
The synchronous model says a round-``t`` multicast lands at ``t + 1``.
On a real network the peers re-create that lockstep with a *local
fence barrier*: in every round each peer sends, to every tree
neighbour, exactly one reliable datagram — the round's DATA if the
neighbour is among its destinations, an empty FENCE otherwise (the
model's one-send-per-round rule makes one datagram per neighbour per
round sufficient).  A peer enters round ``t + 1`` once it holds a
round-``t`` token from every live tree neighbour, so deliveries are
processed at exactly the logical time the offline schedule assigns
them — which is why the emitted transcript is *identical* to the
offline ConcurrentUpDown schedule, datagram reordering and all.

Ack/retransmit state machine
----------------------------
Every DATA/FENCE is retransmitted until acknowledged::

    SEND ──> WAIT(backoff) ──ack──> DONE
      ^          │
      └──timeout─┘   backoff_t = min(cap, base * factor^attempt) * jitter

``jitter`` is a seeded splitmix64 draw keyed by
``(seed, src, dst, phase, round, attempt)``, so two peers' retry storms
decorrelate deterministically.  Receivers acknowledge *every* copy
(acks are idempotent) and deduplicate by ``(sender, phase, round)``
before touching protocol state, so at-least-once delivery at the wire
becomes exactly-once delivery at the processor.

Failure detection
-----------------
A heartbeat task beacons to every tree neighbour each
``heartbeat_interval`` and watches last-heard timestamps (any datagram
counts as liveness).  A neighbour silent for longer than ``fail_after``
is *suspected*: the peer marks it dead locally, abandons reliable sends
to it, and reports the suspicion upward — the runner aborts the online
phase and routes the residue through the survival replanner.  The
retransmit loop itself is a second detector: a destination that has
swallowed ``max_attempts`` copies without one ack is reported through
the same suspicion path instead of being retried forever.

Rejoin (phase REJOIN, the supervised-restart state transfer)
------------------------------------------------------------
A peer restarted by the :class:`~repro.runtime.supervisor.Supervisor`
owns nothing but its own message; before it can take part in a repair
schedule it pulls a live neighbour's hold bitset over the same socket:
``RESYNC_REQ`` is retransmitted (fresh loss draws per copy) until every
16-bit ``RESYNC`` chunk of the bitset has landed.  Chunks are
idempotent, so the responder simply re-answers every request copy.

Phase 2 (survival) replays a :func:`repro.core.survival.survive`
schedule: the runner hands each surviving peer its own slice (what it
sends, what it will receive, round by round) and the same ack/fence
machinery drives it to completion among the survivors.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.online import OnlineProcessor
from ..exceptions import (
    GossipRuntimeError,
    PeerDeadError,
    RuntimeDeadlineError,
    WireFormatError,
)
from ..simulator.lossy import _uniform
from .clock import Clock
from .transport import LossyDatagramTransport
from .wire import (
    ACK,
    DATA,
    FENCE,
    HEARTBEAT,
    PHASE_ONLINE,
    PHASE_REJOIN,
    PHASE_SURVIVAL,
    RESYNC,
    RESYNC_REQ,
    Datagram,
    decode,
    encode,
)

__all__ = ["RuntimeConfig", "PeerScript", "TranscriptEntry", "GossipPeer", "PeerProtocol"]

_TAG_BACKOFF = 0xBAC0

#: Poll quantum for waits that must also observe aborts (virtual seconds).
_WAIT_QUANTUM = 0.05

#: How many rounds of attempt state the transport keeps behind the
#: peer's current round.  Lockstep peers can lag each other by only a
#: couple of fences, so 8 rounds of slack is already generous — far
#: smaller than an unbounded table, still wide enough that a re-ack of
#: a straggling duplicate never restarts its draw sequence.
_ATTEMPT_EXPIRE_LAG = 8


@dataclass(frozen=True)
class RuntimeConfig:
    """Tunable timing of the runtime (all in the injectable clock's seconds).

    Attributes
    ----------
    ack_timeout:
        Initial retransmit backoff for unacknowledged DATA/FENCE.
    backoff_factor / backoff_cap:
        Exponential backoff growth and ceiling.
    heartbeat_interval:
        Beacon period of the failure detector.
    fail_after:
        Silence after which a neighbour is suspected dead.  Must exceed
        a handful of heartbeat intervals or healthy-but-lossy links get
        falsely accused.
    round_timeout:
        Per-round deadline: how long a peer waits at one fence barrier
        before declaring the round dead (typed
        :class:`~repro.exceptions.RuntimeDeadlineError`, ``phase="round"``).
        Keep it above ``fail_after`` so real deaths are *detected and
        survived* rather than surfacing as bare deadline errors.
    run_timeout:
        Whole-run deadline enforced by the runner.
    max_attempts:
        Retransmission budget of one reliable record.  A destination
        that swallows this many copies without acking one is reported
        to the suspicion path (and marked dead locally) instead of
        being retried forever — the cap turns a live-but-unresponsive
        peer from an infinite loop into an ordinary detected failure.
    seed:
        Seed for the deterministic backoff jitter draws.
    """

    ack_timeout: float = 0.02
    backoff_factor: float = 2.0
    backoff_cap: float = 0.5
    heartbeat_interval: float = 0.25
    fail_after: float = 1.5
    round_timeout: float = 8.0
    run_timeout: float = 60.0
    max_attempts: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.ack_timeout <= 0 or self.backoff_factor < 1.0:
            raise GossipRuntimeError("backoff parameters must be positive/growing")
        if self.max_attempts < 1:
            raise GossipRuntimeError("max_attempts must be >= 1")
        if self.fail_after <= 2 * self.heartbeat_interval:
            raise GossipRuntimeError(
                "fail_after must exceed two heartbeat intervals "
                f"({self.fail_after} <= 2 * {self.heartbeat_interval})"
            )
        if self.round_timeout <= self.fail_after:
            raise GossipRuntimeError(
                "round_timeout must exceed fail_after so failure detection "
                "wins the race against the round deadline"
            )

    def backoff(self, attempt: int, *, src: int, dst: int, phase: int,
                rnd: int) -> float:
        """Seeded-exponential backoff before retransmission ``attempt + 1``."""
        base = min(self.backoff_cap, self.ack_timeout * self.backoff_factor ** attempt)
        jitter = _uniform(self.seed, _TAG_BACKOFF, src, dst, phase, rnd, attempt)
        return base * (0.5 + jitter)


@dataclass(frozen=True)
class TranscriptEntry:
    """One executed multicast, in offline-schedule coordinates."""

    round: int
    sender: int
    message: int
    destinations: Tuple[int, ...]


@dataclass(frozen=True)
class PeerScript:
    """One survivor's slice of a survival schedule (phase 2).

    ``sends[t]`` is the ``(message, destinations)`` multicast the peer
    performs in round ``t``; ``expects[t]`` the ``(sender, message)``
    delivery landing at time ``t`` (sent at ``t - 1``).  Both exploit
    the model's one-send/one-receive-per-round rules, so a dict entry is
    a single tuple, never a list.
    """

    horizon: int
    sends: Dict[int, Tuple[int, Tuple[int, ...]]] = field(default_factory=dict)
    expects: Dict[int, Tuple[int, int]] = field(default_factory=dict)


class PeerProtocol(asyncio.DatagramProtocol):
    """Datagram layer of one peer: dedup, acks, token buffering, liveness.

    Deliberately independent of the peer's round-driving task: a peer
    whose protocol task has finished (or aborted) keeps acknowledging
    retransmissions and feeding the failure detector, so a slow
    neighbour is never mistaken for a dead one.
    """

    def __init__(self, peer: "GossipPeer") -> None:
        self.peer = peer
        self.malformed = 0

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        peer = self.peer
        transport = peer.transport
        if transport is None:
            return  # rendezvous still in progress; retransmits will land
        if transport.killed:
            return  # a fail-stopped process hears nothing
        try:
            dgram = decode(data)
        except WireFormatError:
            self.malformed += 1
            return
        peer.note_alive(dgram.sender)
        if dgram.kind == ACK:
            event = peer.ack_events.get((dgram.sender, dgram.phase, dgram.round))
            if event is not None:
                event.set()
            return
        if dgram.kind == HEARTBEAT:
            return
        if dgram.kind == RESYNC_REQ:
            peer.serve_resync(dgram.sender)
            return
        if dgram.kind == RESYNC:
            peer.resync_chunks[dgram.round] = dgram.payload
            peer.token_arrived.set()
            return
        # DATA / FENCE: always (re-)ack, deliver into the token store once.
        peer.send_ack(dgram)
        key = (dgram.phase, dgram.round, dgram.sender)
        if key in peer.tokens:
            peer.duplicates_suppressed += 1
            return
        peer.tokens[key] = dgram.payload if dgram.kind == DATA else None
        peer.token_arrived.set()


class GossipPeer:
    """One vertex of the running network (see module docstring)."""

    def __init__(
        self,
        vertex: int,
        proc: OnlineProcessor,
        *,
        config: RuntimeConfig,
        clock: Clock,
        suspect: Callable[[int, int], None],
        kill_round: Optional[int] = None,
        kill_via: Optional[Callable[[], None]] = None,
    ) -> None:
        self.vertex = vertex
        self.proc = proc
        self.config = config
        self.clock = clock
        self._suspect_cb = suspect
        self.kill_round = kill_round
        #: How the peer dies at ``kill_round``: ``None`` silences the
        #: transport in-process (the runner's simulated fail-stop); the
        #: supervisor's children install ``os.kill(self, SIGKILL)`` here
        #: so the whole interpreter dies for real.
        self.kill_via = kill_via

        neighbours: List[int] = [c.vertex for c in proc.children]
        if proc.parent is not None:
            neighbours.append(proc.parent)
        self.tree_neighbours: Tuple[int, ...] = tuple(sorted(neighbours))

        self.transport: Optional[LossyDatagramTransport] = None
        self.addr_of: Dict[int, Tuple[str, int]] = {}

        #: (phase, round, sender) -> message id (DATA) or None (FENCE).
        self.tokens: Dict[Tuple[int, int, int], Optional[int]] = {}
        self.token_arrived = asyncio.Event()
        #: (dest, phase, round) -> ack event for one in-flight reliable send.
        self.ack_events: Dict[Tuple[int, int, int], asyncio.Event] = {}
        #: chunk index -> 16-bit slice of a rejoin state transfer.
        self.resync_chunks: Dict[int, int] = {}

        self.holds = 1 << proc.i
        self.dead: Set[int] = set()
        self.last_heard: Dict[int, float] = {}
        self.transcript: List[TranscriptEntry] = []
        self.survival_transcript: List[TranscriptEntry] = []
        self.rounds_completed = 0
        self.retransmissions = 0
        self.duplicates_suppressed = 0
        self.died_at: Optional[int] = None

        self._abort = asyncio.Event()
        self._stopped = False

    # -- wiring --------------------------------------------------------
    def attach(self, transport: LossyDatagramTransport,
               addr_of: Dict[int, Tuple[str, int]]) -> None:
        """Give the peer its (chaos-wrapped) socket and the address book."""
        self.transport = transport
        self.addr_of = dict(addr_of)
        now = self.clock.time()
        for u in self.tree_neighbours:
            self.last_heard[u] = now

    def abort(self) -> None:
        """Ask the round-driving task to stop at its next await point."""
        self._abort.set()
        self.token_arrived.set()

    def resume(self) -> None:
        """Clear an earlier abort so the peer can run the survival phase."""
        self._abort.clear()
        self.token_arrived.clear()

    def stop(self) -> None:
        """Stop background loops (heartbeats) permanently."""
        self._stopped = True
        self.abort()

    def note_alive(self, sender: int) -> None:
        """Record datagram-level liveness evidence for ``sender``."""
        self.last_heard[sender] = self.clock.time()

    # -- raw sends -----------------------------------------------------
    def _sendto(self, dgram: Datagram, dest: int) -> None:
        if self.transport is None:
            raise GossipRuntimeError(f"peer {self.vertex} has no transport")
        addr = self.addr_of.get(dest)
        if addr is None:
            raise GossipRuntimeError(
                f"peer {self.vertex} has no address for peer {dest}"
            )
        self.transport.sendto(encode(dgram), addr)

    def send_ack(self, received: Datagram) -> None:
        """Acknowledge one DATA/FENCE datagram (idempotent, unreliable)."""
        self._sendto(
            Datagram(kind=ACK, phase=received.phase, round=received.round,
                     sender=self.vertex, payload=received.kind),
            received.sender,
        )

    # -- reliable delivery --------------------------------------------
    async def _send_reliable(self, dgram: Datagram, dest: int) -> bool:
        """Retransmit until acked; give up on abort or a dead destination.

        A destination that swallows ``max_attempts`` copies without one
        ack is handed to the suspicion path — the retransmit loop is a
        failure detector too, never an infinite loop.
        """
        key = (dest, dgram.phase, dgram.round)
        event = asyncio.Event()
        self.ack_events[key] = event
        attempt = 0
        try:
            while not event.is_set():
                if self._abort.is_set() and dgram.phase == PHASE_ONLINE:
                    return False
                if dest in self.dead:
                    return False
                if attempt >= self.config.max_attempts:
                    self.dead.add(dest)
                    self.token_arrived.set()
                    self._suspect_cb(self.vertex, dest)
                    return False
                self._sendto(dgram, dest)
                if attempt:
                    self.retransmissions += 1
                timeout = self.config.backoff(
                    attempt, src=self.vertex, dst=dest,
                    phase=dgram.phase, rnd=dgram.round,
                )
                try:
                    await self.clock.wait_for(event.wait(), timeout)
                except asyncio.TimeoutError:
                    attempt += 1
            return True
        finally:
            self.ack_events.pop(key, None)
            if self.transport is not None:
                self.transport.forget(dest, dgram.kind, dgram.phase, dgram.round)

    async def _send_round(self, phase: int, rnd: int, message: Optional[int],
                          dests: Sequence[int], fence_to: Sequence[int]) -> None:
        """One round's outgoing datagrams: DATA to ``dests``, FENCE elsewhere."""
        sends = []
        if message is not None:
            data = Datagram(kind=DATA, phase=phase, round=rnd,
                            sender=self.vertex, payload=message)
            sends.extend(self._send_reliable(data, d) for d in dests)
        fence = Datagram(kind=FENCE, phase=phase, round=rnd,
                         sender=self.vertex, payload=0)
        sends.extend(self._send_reliable(fence, u) for u in fence_to)
        if sends:
            await asyncio.gather(*sends)

    # -- barrier waits -------------------------------------------------
    async def _await_tokens(self, phase: int, rnd: int,
                            senders: Sequence[int]) -> None:
        """Block until every sender's round-``rnd`` token is here.

        Deliberately does *not* skip senders the local detector marked
        dead: the lockstep protocol cannot proceed without a neighbour's
        input (skipping would trade a missing delivery for a possession
        violation).  A peer starved by a death simply stays blocked until
        the runner aborts the phase and replans — that is the wavefront
        that makes holds-at-abort deterministic.
        """
        deadline = self.clock.time() + self.config.round_timeout
        while True:
            missing = [
                u for u in senders if (phase, rnd, u) not in self.tokens
            ]
            if not missing:
                return
            if self._abort.is_set():
                raise _Aborted()
            now = self.clock.time()
            if now >= deadline:
                raise RuntimeDeadlineError(
                    f"peer {self.vertex} round {rnd}: no token from "
                    f"{missing} within {self.config.round_timeout:.2f}s",
                    phase="round",
                )
            self.token_arrived.clear()
            try:
                await self.clock.wait_for(
                    self.token_arrived.wait(),
                    min(_WAIT_QUANTUM, deadline - now),
                )
            except asyncio.TimeoutError:
                pass

    def _deliver_online(self, time: int) -> None:
        """Feed round ``time - 1`` DATA tokens into the online processor."""
        for u in self.tree_neighbours:
            payload = self.tokens.get((PHASE_ONLINE, time - 1, u))
            if payload is not None:
                self.proc.receive(time, u, payload)
                self.holds |= 1 << payload

    # -- phase 1: the online protocol on sockets ----------------------
    async def run_online(self, horizon: int) -> None:
        """Drive rounds ``0 .. horizon`` of ConcurrentUpDown from local state.

        Mirrors :func:`repro.core.online.run_online_gossip` exactly,
        with datagram fences standing in for the simulator's global
        round loop.  A configured kill round turns the peer into a
        fail-stop corpse: deliveries already in flight land (matching
        :class:`~repro.simulator.lossy.FaultModel` semantics), then the
        transport goes dark and the task returns.
        """
        try:
            for t in range(horizon + 1):
                if t > 0:
                    await self._await_tokens(PHASE_ONLINE, t - 1,
                                             self.tree_neighbours)
                    self._deliver_online(t)
                if self.kill_round is not None and t >= self.kill_round:
                    self.died_at = t
                    if self.kill_via is not None:
                        self.kill_via()  # SIGKILL path: does not return
                    if self.transport is not None:
                        self.transport.kill()
                    return
                if t == horizon:
                    break
                txs = self.proc.transmissions(t)
                message: Optional[int] = None
                dests: Tuple[int, ...] = ()
                if txs:
                    message = txs[0].message
                    dests = tuple(sorted(txs[0].destinations))
                    self.transcript.append(
                        TranscriptEntry(round=t, sender=self.vertex,
                                        message=message, destinations=dests)
                    )
                fence_to = [u for u in self.tree_neighbours if u not in dests]
                await self._send_round(PHASE_ONLINE, t, message, dests, fence_to)
                self.rounds_completed = t + 1
                if self.transport is not None:
                    self.transport.expire_before(
                        PHASE_ONLINE, t - _ATTEMPT_EXPIRE_LAG
                    )
        except _Aborted:
            return

    # -- phase 2: scripted survival rounds ----------------------------
    async def run_script(self, script: PeerScript) -> None:
        """Execute this peer's slice of a survival schedule.

        Expectations are exact (the runner derived them from the
        replanned schedule), so no fences are needed: the peer waits for
        precisely the deliveries it is owed, then performs its own
        sends.  Retransmission still rides underneath, so transient
        socket loss cannot stall the replay.
        """
        for t in range(script.horizon + 1):
            expected = script.expects.get(t)
            if expected is not None:
                sender, message = expected
                if sender in self.dead:
                    raise PeerDeadError(
                        f"peer {self.vertex} is scripted to receive from "
                        f"dead peer {sender} at time {t}",
                        peer=sender,
                    )
                await self._await_tokens(PHASE_SURVIVAL, t - 1, (sender,))
                payload = self.tokens.get((PHASE_SURVIVAL, t - 1, sender))
                if payload != message:
                    raise GossipRuntimeError(
                        f"peer {self.vertex} expected message {message} from "
                        f"{sender} at time {t}, wire carried {payload!r}"
                    )
                self.holds |= 1 << message
            if t == script.horizon:
                break
            send = script.sends.get(t)
            if send is not None:
                message, dests = send
                if not self.holds >> message & 1:
                    raise GossipRuntimeError(
                        f"peer {self.vertex} scripted to send {message} at "
                        f"round {t} without holding it"
                    )
                self.survival_transcript.append(
                    TranscriptEntry(round=t, sender=self.vertex,
                                    message=message, destinations=dests)
                )
                await self._send_round(PHASE_SURVIVAL, t, message, dests, ())
            if self.transport is not None:
                self.transport.expire_before(
                    PHASE_SURVIVAL, t - _ATTEMPT_EXPIRE_LAG
                )

    # -- rejoin state transfer (phase REJOIN) --------------------------
    def serve_resync(self, requester: int) -> None:
        """Answer one ``RESYNC_REQ``: ship the hold bitset in u16 chunks.

        Unreliable and idempotent by design — the requester keeps
        retransmitting its request until every chunk landed, and every
        request copy is answered in full.
        """
        holds = self.holds
        for c in range((self.proc.n + 15) // 16):
            self._sendto(
                Datagram(kind=RESYNC, phase=PHASE_REJOIN, round=c,
                         sender=self.vertex, payload=holds >> (16 * c) & 0xFFFF),
                requester,
            )

    async def fetch_resync(self, source: int) -> int:
        """Pull ``source``'s hold bitset (the rejoin state transfer).

        Retransmits the request with the usual seeded backoff until all
        chunks are here, folds them into ``self.holds``, and returns the
        merged bitset.  Bounded by ``round_timeout``
        (:class:`~repro.exceptions.RuntimeDeadlineError`,
        ``phase="rejoin"``).
        """
        chunks = (self.proc.n + 15) // 16
        req = Datagram(kind=RESYNC_REQ, phase=PHASE_REJOIN, round=0,
                       sender=self.vertex, payload=0)
        deadline = self.clock.time() + self.config.round_timeout
        attempt = 0
        while any(c not in self.resync_chunks for c in range(chunks)):
            now = self.clock.time()
            if now >= deadline:
                raise RuntimeDeadlineError(
                    f"peer {self.vertex}: resync from {source} incomplete "
                    f"within {self.config.round_timeout:.2f}s",
                    phase="rejoin",
                )
            self._sendto(req, source)
            if attempt:
                self.retransmissions += 1
            timeout = self.config.backoff(
                attempt, src=self.vertex, dst=source,
                phase=PHASE_REJOIN, rnd=0,
            )
            self.token_arrived.clear()
            try:
                await self.clock.wait_for(
                    self.token_arrived.wait(), min(timeout, deadline - now)
                )
            except asyncio.TimeoutError:
                pass
            attempt += 1
        for c in range(chunks):
            self.holds |= self.resync_chunks[c] << (16 * c)
        if self.transport is not None:
            self.transport.forget(source, RESYNC_REQ, PHASE_REJOIN, 0)
        return self.holds

    # -- failure detector ---------------------------------------------
    async def heartbeat_loop(self) -> None:
        """Beacon to tree neighbours and suspect the silent ones."""
        seq = 0
        while not self._stopped:
            await self.clock.sleep(self.config.heartbeat_interval)
            if self._stopped:
                return
            if self.transport is not None and self.transport.killed:
                return  # dead processes beacon nothing
            for u in self.tree_neighbours:
                if u not in self.dead:
                    self._sendto(
                        Datagram(kind=HEARTBEAT, phase=PHASE_ONLINE,
                                 round=seq, sender=self.vertex, payload=0),
                        u,
                    )
            seq += 1
            now = self.clock.time()
            for u in self.tree_neighbours:
                if u in self.dead:
                    continue
                if now - self.last_heard.get(u, now) > self.config.fail_after:
                    self.dead.add(u)
                    self.token_arrived.set()
                    self._suspect_cb(self.vertex, u)


class _Aborted(Exception):
    """Internal control flow: the runner aborted the online phase."""
