#!/usr/bin/env python
"""Quickstart: gossip on a mesh network in ten lines.

Builds a 4x5 mesh, constructs the minimum-depth spanning tree, runs the
paper's ConcurrentUpDown algorithm, validates the schedule on the
round-based simulator, and prints the schedule next to the paper's
bounds.

Run:  python examples/quickstart.py
"""

from repro import gossip, radius, summarize, topologies
from repro.viz import render_tree

def main() -> None:
    # 1. Pick a network (any connected repro.Graph works).
    network = topologies.grid_2d(4, 5)
    info = summarize(network)
    print(f"network: {network.name}  n={info.n}  m={info.m}  radius={info.radius}")

    # 2. One call runs the whole pipeline of the paper:
    #    minimum-depth spanning tree -> DFS labelling -> ConcurrentUpDown.
    plan = gossip(network)
    print(f"\nschedule: {plan.schedule.name}, {plan.total_time} rounds")
    print(f"Theorem 1 guarantee: n + r = {network.n} + {radius(network)} "
          f"= {network.n + radius(network)}")
    print(f"trivial lower bound: n - 1 = {network.n - 1}")

    # 3. Execute on the simulator (raises if anything violates the model).
    result = plan.execute()
    print(f"\nexecuted: complete={result.complete}, "
          f"duplicate deliveries={result.duplicate_deliveries}")
    finish = plan.vertex_completion_times()
    print(f"first processor done at t={min(finish.values())}, "
          f"last at t={max(finish.values())}")

    # 4. Inspect the communication tree the schedule runs on.
    print("\nminimum-depth spanning tree (vertex [i=<label> j=<subtree-end> k=<level>]):")
    print(render_tree(plan.tree, plan.labeled))


if __name__ == "__main__":
    main()
