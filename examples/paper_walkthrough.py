#!/usr/bin/env python
"""Walk through every figure and table of the paper, regenerating each.

Fig. 1 (ring), Fig. 2 (Petersen), Fig. 3 (N3), Fig. 4 -> Fig. 5 (the
worked 16-vertex example), Tables 1-4 (per-vertex timelines), plus the
lookahead ablation from the Section 3.2 discussion.

Run:  python examples/paper_walkthrough.py
"""

from repro.analysis.tables import paper_tables, render_timeline
from repro.core.ablations import no_lip_penalty
from repro.core.gossip import gossip
from repro.core.ring import hamiltonian_circuit, ring_gossip
from repro.networks.paper_networks import (
    fig1_ring,
    fig4_network,
    fig5_tree,
    n3_multicast_schedule,
    n3_network,
    petersen,
    petersen_gossip_schedule,
)
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.simulator.validator import assert_gossip_schedule
from repro.tree.labeling import LabeledTree
from repro.viz import render_tree


def main() -> None:
    print("=" * 70)
    print("Fig. 1 — network N1 (Hamiltonian circuit)")
    ring = fig1_ring(8)
    schedule = ring_gossip(list(range(8)))
    assert_gossip_schedule(ring, schedule)
    print(f"rotating schedule completes gossip in {schedule.total_time} rounds "
          f"= n - 1 (optimal)")

    print("\n" + "=" * 70)
    print("Fig. 2 — network N2 (Petersen graph)")
    p = petersen()
    print(f"Hamiltonian circuit: {hamiltonian_circuit(p)}")
    s2 = petersen_gossip_schedule()
    assert_gossip_schedule(p, s2)
    print(f"yet gossip completes in {s2.total_time} = n - 1 rounds, all "
          f"unicasts (telephone-valid)")

    print("\n" + "=" * 70)
    print("Fig. 3 — network N3 (multicast strictly beats telephone)")
    n3 = n3_network()
    print(f"Hamiltonian circuit: {hamiltonian_circuit(n3)}")
    s3 = n3_multicast_schedule()
    assert_gossip_schedule(n3, s3)
    print(f"multicast gossip: {s3.total_time} = n - 1 rounds; the telephone")
    print("model needs >= 6 (three degree-2 vertices x 4 receives, two")
    print("center senders).")

    print("\n" + "=" * 70)
    print("Fig. 4 -> Fig. 5 — minimum-depth spanning tree of the example")
    g4 = fig4_network()
    tree = minimum_depth_spanning_tree(g4)
    assert tree == fig5_tree()
    labeled = LabeledTree(tree)
    print(render_tree(tree, labeled))

    print("\n" + "=" * 70)
    print("Tables 1-4 — per-vertex ConcurrentUpDown timelines")
    captions = {0: "Table 1", 1: "Table 2", 4: "Table 3", 8: "Table 4"}
    for vertex, timeline in paper_tables().items():
        print()
        print(render_timeline(
            timeline, title=f"{captions[vertex]} — vertex with message {vertex}:"
        ))

    plan = gossip(g4)
    plan.execute()
    print("\n" + "=" * 70)
    print(f"Theorem 1 on the example: total time {plan.total_time} "
          f"= n + r = 16 + 3")

    print("\n" + "=" * 70)
    print("Section 3.2 discussion — why the lookahead goes out at time 0")
    penalty = no_lip_penalty(labeled)
    print(f"naive overlap without the lookahead conflicts: {penalty.conflicts}")
    print(f"greedy fallback without lookahead: {penalty.without_lip_time} rounds "
          f"vs {penalty.with_lip_time} with it "
          f"(+{penalty.extra_rounds})")


if __name__ == "__main__":
    main()
