#!/usr/bin/env python
"""Iterative solver loop: one broadcast, then gossiping every iteration.

The shape of the applications the paper cites (linear solvers, DFT):
a coordinator broadcasts the initial data, then each iteration performs
an all-gather (gossip) of the per-rank partial results over the *same*
tree network — which is why Section 4 stresses that the tree is built
once and the O(n)-per-processor schedule is reused.

Demonstrates:

* optimal multicast broadcast vs the telephone baseline,
* the fixed tree reused across iterations,
* the pipelining analysis: ConcurrentUpDown schedules are
  receive-saturated, so successive gossips cannot overlap — the steady
  state is n + r rounds per iteration, and the amortised savings come
  from reusing the tree, exactly as the paper advises.

Run:  python examples/iterative_solver_pipeline.py
"""

from repro import broadcast, gossip, radius, telephone_broadcast, topologies
from repro.core.concurrent_updown import concurrent_updown
from repro.core.repeated import minimal_pipeline_offset, repeated_gossip
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.tree.labeling import LabeledTree


def main() -> None:
    net = topologies.torus_2d(5, 5)
    r = radius(net)
    print(f"interconnect: {net.name}, n={net.n}, radius={r}")

    # Step 1 — the coordinator ships the initial problem to all ranks.
    mb = broadcast(net, source=0)
    tb = telephone_broadcast(net, source=0)
    print(f"\ninitial broadcast: multicast {mb.total_time} rounds "
          f"(= eccentricity), telephone baseline {tb.total_time}")

    # Step 2 — the tree is built once and shared by every iteration.
    tree = minimum_depth_spanning_tree(net)
    labeled = LabeledTree(tree)
    single = concurrent_updown(labeled)
    print(f"\nper-iteration all-gather: {single.total_time} rounds "
          f"(n + r = {net.n} + {tree.height})")

    # Step 3 — can iterations overlap?  Measure the pipelining headroom.
    offset = minimal_pipeline_offset(single)
    print(f"minimal safe inter-iteration offset: {offset} rounds "
          f"(capacity floor n - 1 = {net.n - 1})")
    if offset == single.total_time:
        print("=> the schedule is receive-saturated: iterations cannot "
              "overlap; reuse the tree, run gossips back to back.")

    iterations = 6
    plan = repeated_gossip(labeled, instances=iterations)
    plan.execute()
    print(f"\n{iterations} iterations: {plan.total_time} rounds total, "
          f"{plan.amortised_time:.1f} per iteration "
          f"(sequential would be {plan.sequential_time})")

    # Step 4 — the full-loop cost with the generic pipeline each time
    # (rebuilding the tree) for contrast.
    rebuild_cost_hint = gossip(net).total_time
    print(f"\nrebuilding the tree each iteration would add an O(mn) "
          f"construction per iteration for the same {rebuild_cost_hint} "
          "communication rounds — the paper's amortisation advice.")


if __name__ == "__main__":
    main()
