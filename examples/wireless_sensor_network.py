#!/usr/bin/env python
"""Wireless sensor network gossip (the paper's Section 2 motivation).

A transmission with power ``r^alpha`` reaches *every* receiver within
distance ``r`` — multicasting is free in radio networks, which is
exactly the communication model of the paper.  This example scatters
sensor nodes in the unit square, links nodes within radio range, and
compares:

* the multicast ConcurrentUpDown schedule (``n + r`` rounds), against
* the telephone-model baseline (each radio slot wasted on a single
  receiver), and
* the per-node energy picture: one *send* slot costs battery, so the
  schedule's per-node send counts approximate energy drain.

Run:  python examples/wireless_sensor_network.py
"""

from collections import Counter

from repro import gossip, radius
from repro.networks.random_graphs import random_geometric
from repro.simulator.metrics import compute_metrics


def sends_per_node(schedule, n):
    counts = Counter()
    for rnd in schedule:
        for tx in rnd:
            counts[tx.sender] += 1
    return [counts.get(v, 0) for v in range(n)]


def main() -> None:
    n, radio_range, seed = 40, 0.22, 7
    field = random_geometric(n, radio_range, seed)
    r = radius(field)
    print(f"sensor field: {n} nodes, radio range {radio_range}, "
          f"{field.m} links, network radius {r}")

    multicast = gossip(field, algorithm="concurrent-updown")
    telephone = gossip(field, algorithm="telephone")
    for plan in (multicast, telephone):
        plan.execute(on_tree_only=True)

    print(f"\n{'model':<12} {'rounds':>7} {'sends':>7} {'max fan-out':>12}")
    for label, plan in (("multicast", multicast), ("telephone", telephone)):
        m = compute_metrics(plan.schedule)
        print(f"{label:<12} {m.total_time:>7} {m.total_multicasts:>7} "
              f"{m.max_fan_out:>12}")
    speedup = telephone.total_time / multicast.total_time
    print(f"\nmulticast finishes {speedup:.1f}x sooner "
          f"(n + r = {n + r} vs the unicast baseline)")

    # Energy: sends per node under the multicast schedule.
    energy = sends_per_node(multicast.schedule, n)
    hottest = max(range(n), key=energy.__getitem__)
    print(f"\nenergy (send slots per node): mean={sum(energy) / n:.1f}, "
          f"max={energy[hottest]} at node {hottest} "
          f"(level {multicast.tree.level(hottest)} of the gossip tree)")
    print("nodes nearer the tree root relay more — battery placement advice"
          " falls straight out of the schedule.")


if __name__ == "__main__":
    main()
