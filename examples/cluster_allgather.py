#!/usr/bin/env python
"""All-gather on parallel-computer interconnects.

Gossiping *is* MPI's all-gather: every rank holds one block and all
ranks need all blocks (the primitive behind dense matrix multiply,
DFT and iterative solvers the paper cites).  This example schedules
all-gather on classic interconnect topologies — hypercube, torus,
cube-connected cycles, de Bruijn — and reports how close the paper's
``n + r`` schedule gets to the ``n - 1`` wire-speed floor on each.

Run:  python examples/cluster_allgather.py
"""

from repro import gossip, radius, topologies
from repro.analysis.comparison import compare_algorithms


def main() -> None:
    interconnects = [
        topologies.hypercube(5),                # 32 ranks
        topologies.torus_2d(6, 6),              # 36 ranks
        topologies.cube_connected_cycles(3),    # 24 ranks
        topologies.de_bruijn(2, 5),             # 32 ranks
        topologies.butterfly(3),                # 32 ranks
    ]

    print(f"{'interconnect':<16} {'n':>4} {'r':>3} {'n-1':>5} "
          f"{'concurrent':>11} {'updown':>7} {'simple':>7} {'telephone':>10}")
    for net in interconnects:
        row = compare_algorithms(
            net,
            algorithms=["concurrent-updown", "updown", "simple", "telephone"],
        )
        print(f"{net.name:<16} {net.n:>4} {row.radius:>3} {row.lower_bound:>5} "
              f"{row.times['concurrent-updown']:>11} {row.times['updown']:>7} "
              f"{row.times['simple']:>7} {row.times['telephone']:>10}")

    print("\nConcurrentUpDown pays exactly r rounds over the wire-speed floor")
    print("n - 1 on every interconnect; low-diameter networks (hypercube,")
    print("de Bruijn) keep that overhead to a handful of rounds.")

    # A concrete all-gather: simulate and show when each rank finishes.
    net = topologies.hypercube(5)
    plan = gossip(net)
    finish = plan.vertex_completion_times()
    print(f"\nhypercube-5 all-gather: {plan.total_time} rounds "
          f"(n + r = {net.n} + {radius(net)})")
    by_time = {}
    for rank, t in finish.items():
        by_time.setdefault(t, []).append(rank)
    for t in sorted(by_time):
        print(f"  t={t:>2}: {len(by_time[t]):>2} ranks complete")


if __name__ == "__main__":
    main()
