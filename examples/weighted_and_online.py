#!/usr/bin/env python
"""The Section 4 extensions: weighted gossiping and the online protocol.

Part 1 — weighted gossiping.  Processors hold different numbers of
messages (think: sensor nodes with different backlogs).  The paper's
chain-splitting reduction schedules all N = sum(l_p) messages in
N + r' rounds on the chain-expanded tree.

Part 2 — the online protocol.  Each processor is told only its own
(i, j, k) block, its parent, and its children's intervals; everyone then
computes its own sends locally.  The collectively-emitted schedule is
bit-for-bit the offline ConcurrentUpDown schedule.

Run:  python examples/weighted_and_online.py
"""

import numpy as np

from repro.core.online import build_processors, run_online_gossip
from repro.core.concurrent_updown import concurrent_updown
from repro.core.weighted import weighted_gossip
from repro.networks import topologies
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.tree.labeling import LabeledTree


def main() -> None:
    print("=" * 70)
    print("Part 1 — weighted gossiping on a 4x4 torus")
    net = topologies.torus_2d(4, 4)
    rng = np.random.default_rng(11)
    weights = [int(w) for w in rng.integers(1, 5, size=net.n)]
    print(f"per-processor message counts: {weights}  (N = {sum(weights)})")

    plan = weighted_gossip(net, weights)
    result = plan.execute()
    print(f"chain-expanded tree: {plan.expanded.n} virtual processors, "
          f"height r' = {plan.expanded.height}")
    print(f"schedule: {plan.total_time} rounds = N + r' "
          f"= {plan.total_messages} + {plan.expanded.height}; "
          f"complete = {result.complete}")
    load = plan.real_round_load()
    print(f"mimicking cost: a real processor performs at most "
          f"{max(load.values())} virtual sends per round")

    print("\n" + "=" * 70)
    print("Part 2 — the online protocol on a random geometric field")
    from repro.networks.random_graphs import random_geometric

    field = random_geometric(25, 0.3, seed=3)
    labeled = LabeledTree(minimum_depth_spanning_tree(field))

    procs = build_processors(labeled)
    sample = procs[labeled.tree.children(labeled.tree.root)[0]]
    print(f"a processor's entire world view: i={sample.i}, j={sample.j}, "
          f"k={sample.k}, parent={sample.parent}, "
          f"first_child={sample.is_first_child}, "
          f"children={[(c.vertex, c.i, c.j) for c in sample.children]}")

    online = run_online_gossip(labeled)
    offline = concurrent_updown(labeled)
    print(f"online emission: {online.total_time} rounds; "
          f"identical to offline schedule: {online.rounds == offline.rounds}")


if __name__ == "__main__":
    main()
